//! The concurrent batch server.
//!
//! One acceptor thread takes TCP connections; each connection gets a
//! reader thread (parses request lines, dispatches jobs) and a writer
//! thread (waits for each job up to its deadline, writes response lines
//! in request order). Request execution happens on an [`amnesiac_pool`]
//! work-stealing pool owned by a dispatcher thread, so heavy verbs from
//! many connections share one bounded set of workers.
//!
//! ## Backpressure
//!
//! Admission is bounded: at most `backlog` requests may be queued or
//! running at once, across all connections. A request arriving at a full
//! backlog is rejected immediately with a structured
//! [`code::OVERLOADED`] error — it is never queued, so a fast client
//! cannot wedge the service.
//!
//! ## Deadlines and cancellation
//!
//! Every request carries a deadline (`timeout_ms` in the request, else
//! the server default). When the deadline passes before the job
//! completes, the writer sends a structured [`code::TIMEOUT`] error and
//! marks the job cancelled: a job still queued is skipped outright (true
//! cancellation); a job already running completes and its result is
//! discarded — safe Rust cannot preempt a compute in flight.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] (or a `shutdown` request) stops the acceptor,
//! makes readers refuse new requests with [`code::SHUTTING_DOWN`], and
//! lets every already-admitted request drain: writers deliver all pending
//! responses before their connections close. [`Server::join`] returns
//! once every connection and the worker pool have wound down.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amnesiac_pool::Pool;
use amnesiac_rng::Rng;
use amnesiac_telemetry::Json;

use crate::protocol::{code, Request, Response, RouteMeta, ServeError, PROTOCOL_VERSION};

/// How the request handler is plugged into the server: a function from
/// parsed request to payload-or-error. Called on pool workers; must be
/// panic-safe in the sense that a panic is caught and reported as
/// [`code::INTERNAL`], never crashes the server.
pub type Handler = Arc<dyn Fn(&Request) -> Result<Json, ServeError> + Send + Sync>;

/// An optional extension to the `stats` verb's payload: called on every
/// stats snapshot, and every field of the returned object is appended to
/// the payload. Lets the embedding layer surface its own counters (e.g.
/// a shared compile cache) without the server knowing their shape.
pub type StatsHook = Arc<dyn Fn() -> Json + Send + Sync>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind (`127.0.0.1` unless you mean to expose it).
    pub host: String,
    /// TCP port; `0` picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub port: u16,
    /// Worker threads executing requests. At least 1.
    pub workers: usize,
    /// Maximum requests queued-or-running at once before new requests are
    /// rejected with [`code::OVERLOADED`]. At least 1.
    pub backlog: usize,
    /// Default per-request deadline in milliseconds (overridable per
    /// request via `timeout_ms`).
    pub timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            backlog: 64,
            timeout_ms: 30_000,
        }
    }
}

/// Per-verb counters exposed by the `stats` verb.
#[derive(Debug, Clone, Default)]
struct VerbStats {
    requests: u64,
    ok: u64,
    errors: u64,
    timeouts: u64,
    total_ms: f64,
    max_ms: f64,
}

#[derive(Debug, Default)]
struct Stats {
    verbs: BTreeMap<String, VerbStats>,
}

/// The poll interval readers use while blocked on a quiet socket; bounds
/// how long shutdown waits for an idle connection to notice the flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// First pause after a transient `accept()` error. Without a pause, fd
/// exhaustion (EMFILE) under load turns the acceptor into a 100%-CPU
/// spin; with one, it backs off and retries once pressure eases.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(2);

/// Ceiling of the accept-error backoff (doubles per consecutive error).
/// Also bounds how long a draining server waits for the acceptor to
/// re-check the shutdown flag after an error streak.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// The next accept-error pause: exponential, capped.
fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_MAX)
}

/// Wall-clock milliseconds since the UNIX epoch (0 if the clock is
/// before the epoch, which only a badly broken host reports).
pub(crate) fn wall_clock_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A fresh process-unique server identity: a seeded-random 64-bit hex
/// string. Paired with `started_at_ms` in the `stats` payload so a
/// cluster membership view can tell a restarted worker from the old one
/// even when the OS reuses the port.
pub(crate) fn fresh_server_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
        .unwrap_or(0);
    let seed = nanos ^ u64::from(std::process::id()).rotate_left(32);
    let mut rng = Rng::seed_from_u64(seed);
    format!("{:016x}", rng.next_u64())
}

/// Locks a mutex, recovering the guard when a panicking thread poisoned
/// it. Every structure behind a server mutex (stats counters, connection
/// handles, completion slots) stays well-formed across a handler panic,
/// and refusing all further service over a poisoned counter would turn
/// one panic into an outage.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    handler: Handler,
    addr: SocketAddr,
    backlog: usize,
    timeout_ms: u64,
    workers: usize,
    shutdown: AtomicBool,
    /// Requests currently queued or running (admission counter).
    inflight: AtomicUsize,
    rejected_overload: AtomicU64,
    /// Transient `listener.accept()` failures (each one also costs a
    /// backoff pause in the acceptor).
    accept_errors: AtomicU64,
    /// Connections whose reader/writer threads are still running.
    open_connections: AtomicUsize,
    /// Jobs the pool skipped because their deadline had already passed
    /// (or the writer had cancelled them) by the time a worker got there.
    expired_skipped: AtomicU64,
    stats: Mutex<Stats>,
    stats_ext: Option<StatsHook>,
    started: Instant,
    /// Seeded-random process identity, exposed via `stats` so a cluster
    /// membership view can detect a restart behind a reused port.
    server_id: String,
    /// Wall-clock UNIX ms at startup (same restart-detection purpose).
    started_at_ms: u64,
}

impl Shared {
    /// Tries to admit one request under the backlog bound.
    fn try_admit(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.backlog).then_some(n + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking `accept` so it can see
            // the flag; the throwaway connection is dropped unserved.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn record(&self, verb: &str, outcome: &Result<Json, ServeError>, elapsed_ms: f64) {
        let mut stats = lock(&self.stats);
        let entry = stats.verbs.entry(verb.to_string()).or_default();
        entry.requests += 1;
        match outcome {
            Ok(_) => entry.ok += 1,
            Err(e) if e.code == code::TIMEOUT => entry.timeouts += 1,
            Err(_) => entry.errors += 1,
        }
        entry.total_ms += elapsed_ms;
        entry.max_ms = entry.max_ms.max(elapsed_ms);
    }

    /// The `stats` verb's payload.
    fn stats_json(&self) -> Json {
        let stats = lock(&self.stats);
        let mut verbs = Json::obj();
        for (verb, v) in &stats.verbs {
            verbs.set(
                verb,
                Json::obj()
                    .with("requests", v.requests)
                    .with("ok", v.ok)
                    .with("errors", v.errors)
                    .with("timeouts", v.timeouts)
                    .with("total_ms", v.total_ms)
                    .with("max_ms", v.max_ms),
            );
        }
        let mut payload = Json::obj()
            .with("protocol_version", PROTOCOL_VERSION)
            .with("server_id", self.server_id.as_str())
            .with("started_at_ms", self.started_at_ms)
            .with("uptime_ms", self.started.elapsed().as_secs_f64() * 1e3)
            .with("workers", self.workers)
            .with("backlog", self.backlog)
            .with("timeout_ms", self.timeout_ms)
            .with("inflight", self.inflight.load(Ordering::Acquire))
            .with(
                "rejected_overload",
                self.rejected_overload.load(Ordering::Acquire),
            )
            .with("accept_errors", self.accept_errors.load(Ordering::Acquire))
            .with(
                "open_connections",
                self.open_connections.load(Ordering::Acquire),
            )
            .with(
                "expired_skipped",
                self.expired_skipped.load(Ordering::Acquire),
            )
            .with("draining", self.shutdown.load(Ordering::SeqCst))
            .with("verbs", verbs);
        if let Some(hook) = &self.stats_ext {
            if let Json::Obj(fields) = hook() {
                for (key, value) in fields {
                    payload.set(&key, value);
                }
            }
        }
        payload
    }
}

/// One request's completion slot, shared between the pool job computing
/// it and the connection writer waiting on it.
struct Job {
    cancelled: AtomicBool,
    slot: Mutex<Option<Result<Json, ServeError>>>,
    done: Condvar,
}

impl Job {
    fn new() -> Job {
        Job {
            cancelled: AtomicBool::new(false),
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Json, ServeError>) {
        *lock(&self.slot) = Some(result);
        self.done.notify_all();
    }

    /// Waits for completion until `deadline`; `None` means the deadline
    /// passed first (the caller reports a timeout and cancels).
    fn wait_until(&self, deadline: Instant) -> Option<Result<Json, ServeError>> {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = self
                .done
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = next;
            if timeout.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

/// A response owed to the client, in request order.
struct PendingResponse {
    id: Json,
    verb: String,
    received: Instant,
    /// `Some(key)` when the request opted into the v2 envelope: the
    /// writer folds routing metadata (key, zero reroutes, one `serve`
    /// hop) into the response. `None` keeps the v1 envelope unchanged.
    routing_key: Option<String>,
    kind: PendingKind,
}

enum PendingKind {
    /// Decided at dispatch time (stats, rejections, protocol errors).
    Ready(Result<Json, ServeError>),
    /// Executing (or queued) on the pool; resolved by the writer.
    Running(Arc<Job>, Instant),
}

/// A running batch service. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] then [`Server::join`] (or
/// [`Server::stop`] for both).
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor, and returns
    /// immediately. Requests are served until [`Server::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig, handler: Handler) -> std::io::Result<Server> {
        Server::start_with_stats(config, handler, None)
    }

    /// [`Server::start`] with an optional [`StatsHook`] whose fields are
    /// appended to every `stats` payload.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start_with_stats(
        config: ServerConfig,
        handler: Handler,
        stats_ext: Option<StatsHook>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            handler,
            addr,
            backlog: config.backlog.max(1),
            timeout_ms: config.timeout_ms.max(1),
            workers,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            rejected_overload: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            open_connections: AtomicUsize::new(0),
            expired_skipped: AtomicU64::new(0),
            stats: Mutex::new(Stats::default()),
            stats_ext,
            started: Instant::now(),
            server_id: fresh_server_id(),
            started_at_ms: wall_clock_ms(),
        });
        // The dispatcher thread owns the pool: jobs reach it over a
        // channel whose senders are held by the acceptor and the
        // connection readers, so the pool is dropped (draining its queue)
        // exactly when the last connection is done — never from inside
        // one of its own workers.
        let (jobs_tx, jobs_rx) = channel::<Box<dyn FnOnce() + Send>>();
        let dispatcher = thread::Builder::new()
            .name("amnesiac-serve-dispatch".into())
            .spawn(move || dispatcher_loop(workers, jobs_rx))?;
        let conns = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("amnesiac-serve-accept".into())
                .spawn(move || acceptor_loop(listener, shared, conns, jobs_tx))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            conns,
        })
    }

    /// The bound address (read this when `port` was 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins a graceful shutdown: stop accepting, refuse new requests,
    /// drain in-flight ones. Returns immediately; pair with
    /// [`Server::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// A snapshot of the server counters (same payload as the `stats`
    /// verb).
    pub fn stats_json(&self) -> Json {
        self.shared.stats_json()
    }

    /// How many connection handles the server currently tracks. Finished
    /// connections are reaped on every accept, so this stays close to the
    /// number of live connections instead of growing by one per
    /// connection ever accepted — soak tests assert exactly that bound.
    pub fn tracked_connections(&self) -> usize {
        reap_finished(&self.conns);
        lock(&self.conns).len()
    }

    /// Waits until the acceptor, every connection, and the worker pool
    /// have exited. Only returns promptly after [`Server::shutdown`] (or
    /// a `shutdown` request) — otherwise it waits for the next one. The
    /// server handle stays usable afterwards (e.g. for a final
    /// [`Server::stats_json`] snapshot); a second call is a no-op.
    pub fn join(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        loop {
            let Some(conn) = lock(&self.conns).pop() else {
                break;
            };
            let _ = conn.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }

    /// [`Server::shutdown`] followed by [`Server::join`].
    pub fn stop(mut self) {
        self.shutdown();
        self.join();
    }
}

fn dispatcher_loop(workers: usize, jobs: Receiver<Box<dyn FnOnce() + Send>>) {
    let pool = Pool::new(workers);
    for job in jobs {
        pool.spawn(job);
    }
    // Pool drop drains still-queued jobs before joining its workers.
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    jobs_tx: Sender<Box<dyn FnOnce() + Send>>,
) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Transient failure (EMFILE under load, a reset mid-handshake):
            // count it and pause before retrying so an error streak does
            // not pin a core at 100%.
            shared.accept_errors.fetch_add(1, Ordering::AcqRel);
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            thread::sleep(backoff);
            backoff = next_accept_backoff(backoff);
            continue;
        };
        backoff = ACCEPT_BACKOFF_MIN;
        if shared.shutdown.load(Ordering::SeqCst) {
            // Includes the self-connection `begin_shutdown` used as a wakeup.
            break;
        }
        // Reap connections that already wound down, so a long-running
        // server holds handles only for live connections rather than one
        // per connection ever accepted.
        reap_finished(&conns);
        shared.open_connections.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(&shared);
        let conn_jobs = jobs_tx.clone();
        match thread::Builder::new()
            .name("amnesiac-serve-conn".into())
            .spawn(move || serve_connection(conn_shared, stream, conn_jobs))
        {
            Ok(handle) => lock(&conns).push(handle),
            Err(_) => {
                // Thread exhaustion: drop the connection unserved and count
                // it like an accept failure (same transient-pressure class).
                shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                shared.accept_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

/// Removes and joins every finished connection handle. The join is
/// outside the lock (it is prompt — the threads are already done — but
/// there is no reason to hold up the acceptor's critical section for it).
fn reap_finished(conns: &Mutex<Vec<JoinHandle<()>>>) {
    let finished: Vec<JoinHandle<()>> = {
        let mut guard = lock(conns);
        let mut out = Vec::new();
        let mut i = 0;
        while i < guard.len() {
            if guard[i].is_finished() {
                out.push(guard.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out
    };
    for handle in finished {
        let _ = handle.join();
    }
}

fn serve_connection(
    shared: Arc<Shared>,
    stream: TcpStream,
    jobs_tx: Sender<Box<dyn FnOnce() + Send>>,
) {
    // Balances the acceptor's increment on every exit path.
    struct OpenGuard(Arc<Shared>);
    impl Drop for OpenGuard {
        fn drop(&mut self) {
            self.0.open_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _open = OpenGuard(Arc::clone(&shared));
    // Short read timeouts turn the blocking reader into a poll loop that
    // notices the shutdown flag; writes stay blocking.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<PendingResponse>();
    let writer = {
        let shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("amnesiac-serve-write".into())
            .spawn(move || writer_loop(shared, write_stream, rx));
        match spawned {
            Ok(handle) => handle,
            // No writer means no way to answer: close the connection.
            Err(_) => return,
        }
    };
    reader_loop(&shared, stream, &jobs_tx, &tx);
    drop(tx); // close the writer's queue so it drains and exits
    let _ = writer.join();
}

fn reader_loop(
    shared: &Arc<Shared>,
    stream: TcpStream,
    jobs_tx: &Sender<Box<dyn FnOnce() + Send>>,
    tx: &Sender<PendingResponse>,
) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            // A timeout: keep any partial line accumulated so far and
            // poll again, unless the server is draining.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) | Ok(0) => return, // connection error or clean EOF
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    // EOF mid-line: process what we got, then close.
                    process_line(shared, jobs_tx, tx, &buf);
                    return;
                }
                process_line(shared, jobs_tx, tx, &buf);
                buf.clear();
            }
        }
    }
}

fn process_line(
    shared: &Arc<Shared>,
    jobs_tx: &Sender<Box<dyn FnOnce() + Send>>,
    tx: &Sender<PendingResponse>,
    raw: &[u8],
) {
    let line = String::from_utf8_lossy(raw);
    let line = line.trim();
    if line.is_empty() {
        return; // blank keep-alive lines are ignored
    }
    let received = Instant::now();
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(error) => {
            let _ = tx.send(PendingResponse {
                id: Json::Null,
                verb: "?".to_string(),
                received,
                routing_key: None,
                kind: PendingKind::Ready(Err(error)),
            });
            return;
        }
    };
    let routing_key = (request.proto_version() >= 2).then(|| request.routing_key());
    let kind = dispatch(shared, jobs_tx, &request);
    let _ = tx.send(PendingResponse {
        id: request.id,
        verb: request.verb,
        received,
        routing_key,
        kind,
    });
}

/// Decides what happens to one parsed request: answered inline (server
/// verbs, rejections) or admitted and queued on the pool.
fn dispatch(
    shared: &Arc<Shared>,
    jobs_tx: &Sender<Box<dyn FnOnce() + Send>>,
    request: &Request,
) -> PendingKind {
    match request.verb.as_str() {
        "stats" => PendingKind::Ready(Ok(shared.stats_json())),
        "shutdown" => {
            let ready = PendingKind::Ready(Ok(Json::obj().with("draining", true)));
            shared.begin_shutdown();
            ready
        }
        _ if shared.shutdown.load(Ordering::SeqCst) => PendingKind::Ready(Err(ServeError::new(
            code::SHUTTING_DOWN,
            "server is draining and refuses new work",
        ))),
        _ => {
            if !shared.try_admit() {
                shared.rejected_overload.fetch_add(1, Ordering::AcqRel);
                return PendingKind::Ready(Err(ServeError::new(
                    code::OVERLOADED,
                    format!("backlog full ({} requests in flight)", shared.backlog),
                )));
            }
            let job = Arc::new(Job::new());
            let deadline = Instant::now()
                + Duration::from_millis(request.timeout_ms.unwrap_or(shared.timeout_ms));
            let task = {
                let job = Arc::clone(&job);
                let shared = Arc::clone(shared);
                let request = request.clone();
                Box::new(move || {
                    // A request whose deadline passed while it was still
                    // queued is cancelled outright — never executed. The
                    // writer sets `cancelled` when it observes the timeout,
                    // but it can only do so after resolving every earlier
                    // response on its connection; the deadline check covers
                    // the window where an expired job reaches a worker
                    // before the writer got that far, so a pile-up of
                    // expired queued requests never burns worker time.
                    if job.cancelled.load(Ordering::Acquire) || Instant::now() >= deadline {
                        shared.expired_skipped.fetch_add(1, Ordering::AcqRel);
                    } else {
                        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.handler)(&request)))
                            .unwrap_or_else(|_| {
                                Err(ServeError::new(
                                    code::INTERNAL,
                                    format!("handler panicked on verb `{}`", request.verb),
                                ))
                            });
                        job.complete(outcome);
                    }
                    shared.release();
                }) as Box<dyn FnOnce() + Send>
            };
            if jobs_tx.send(task).is_err() {
                // Dispatcher gone: only possible mid-shutdown.
                shared.release();
                return PendingKind::Ready(Err(ServeError::new(
                    code::SHUTTING_DOWN,
                    "server is draining and refuses new work",
                )));
            }
            PendingKind::Running(job, deadline)
        }
    }
}

fn writer_loop(shared: Arc<Shared>, mut stream: TcpStream, rx: Receiver<PendingResponse>) {
    let mut broken = false;
    for pending in rx {
        let result = match pending.kind {
            PendingKind::Ready(result) => result,
            PendingKind::Running(job, deadline) => match job.wait_until(deadline) {
                Some(result) => result,
                None => {
                    job.cancelled.store(true, Ordering::Release);
                    Err(ServeError::new(
                        code::TIMEOUT,
                        format!(
                            "request exceeded its {} ms deadline",
                            (deadline - pending.received).as_millis()
                        ),
                    ))
                }
            },
        };
        let elapsed_ms = pending.received.elapsed().as_secs_f64() * 1e3;
        shared.record(&pending.verb, &result, elapsed_ms);
        if broken {
            continue; // client is gone; keep draining so jobs are released
        }
        let response = Response {
            id: pending.id,
            verb: pending.verb,
            elapsed_ms,
            result,
            meta: pending
                .routing_key
                .map(|key| RouteMeta::local(key, "serve", elapsed_ms)),
        };
        let mut line = response.to_json().compact();
        line.push('\n');
        if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
            broken = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_and_caps() {
        let mut backoff = ACCEPT_BACKOFF_MIN;
        let mut seen = vec![backoff];
        for _ in 0..10 {
            backoff = next_accept_backoff(backoff);
            seen.push(backoff);
        }
        // strictly doubling until the cap, then pinned at the cap
        for pair in seen.windows(2) {
            assert!(pair[1] >= pair[0], "backoff never shrinks: {seen:?}");
            assert!(pair[1] <= ACCEPT_BACKOFF_MAX, "capped: {seen:?}");
        }
        assert_eq!(seen[1], ACCEPT_BACKOFF_MIN * 2);
        assert_eq!(*seen.last().unwrap(), ACCEPT_BACKOFF_MAX);
    }
}
