//! Zero-trip analysis: which CFG edges are provably not taken on a block's
//! *first* execution, and the must-pass query built on top of it.
//!
//! The motivating shape is the fill-then-consume kernel: a guard
//! `bgeu i, n, done` at a loop head is false on the head's first visit
//! whenever `i` and `n` are known constants there (`0 >= 50` — the loop
//! cannot zero-trip), yet plain dominance cannot use that fact, so a `REC`
//! or store inside the loop body "fails" to dominate a later consumer.
//! [`ZeroTrip::must_pass`] restores the guarantee: it deletes the must-block
//! from the graph, prunes first-visit-infeasible edges whose source block
//! provably cannot re-execute without the must-block, and checks the target
//! became unreachable.
//!
//! Soundness of the pruning (documented here because the verifier downgrades
//! diagnostics on its strength): consider an execution prefix that reaches
//! the target while avoiding the must-block, and its first traversal of a
//! pruned edge `(B, s)`. The prefix so far lies in the pruned graph; since
//! `B` cannot reach itself there, this is `B`'s first execution, where the
//! constant propagation below proves the branch outcome excludes `s` —
//! contradiction. Constants at a loop head are taken from the *pre-kill*
//! merge (valid exactly at the first visit); constants elsewhere only
//! involve registers never written inside any surrounding loop (valid at
//! every visit), enforced by killing loop-defined registers at each head.

use std::collections::BTreeSet;

use amnesiac_cfg::Cfg;
use amnesiac_isa::{DecodedInst, DecodedOp, NUM_REGS};

/// Per-register known-constant state (`None` = unknown).
type ConstState = Vec<Option<u64>>;

/// First-visit edge facts over the main-code CFG.
#[derive(Debug, Clone)]
pub struct ZeroTrip {
    /// Edges `(block, succ)` provably not taken on `block`'s first
    /// execution; for non-head blocks the proof holds on *every* execution.
    infeasible: BTreeSet<(usize, usize)>,
    /// Subset of `infeasible` sources that are loop heads (their facts need
    /// the cannot-re-execute side condition).
    head_sources: BTreeSet<usize>,
}

/// Applies one instruction to a constant state.
fn const_transfer(d: &DecodedInst, state: &mut ConstState) {
    let src = |state: &ConstState, j: usize| -> Option<u64> {
        match d.srcs[j] {
            Some(r) => state[r.index()],
            None => Some(0),
        }
    };
    let out: Option<Option<u64>> = match d.op {
        DecodedOp::Li { imm } => Some(Some(imm)),
        DecodedOp::Alu { op } => Some(match (src(state, 0), src(state, 1)) {
            (Some(a), Some(b)) => Some(op.apply(a, b)),
            _ => None,
        }),
        DecodedOp::Alui { op, imm } => Some(src(state, 0).map(|a| op.apply(a, imm))),
        DecodedOp::Fpu { .. }
        | DecodedOp::FpuUn { .. }
        | DecodedOp::Fma
        | DecodedOp::Cvt { .. }
        | DecodedOp::Load { .. }
        | DecodedOp::Rcmp { .. } => Some(None),
        DecodedOp::Store { .. }
        | DecodedOp::Branch { .. }
        | DecodedOp::Jump { .. }
        | DecodedOp::Halt
        | DecodedOp::Rtn
        | DecodedOp::Rec { .. } => None,
    };
    if let (Some(v), Some(dst)) = (out, d.dst) {
        state[dst.index()] = v;
    }
}

/// The natural-loop body of head `h`: `h` plus every block that reaches a
/// back-edge source without passing through `h`.
pub(crate) fn natural_loop(cfg: &Cfg, h: usize) -> BTreeSet<usize> {
    let mut body = BTreeSet::from([h]);
    let mut stack: Vec<usize> = Vec::new();
    for b in 0..cfg.len() {
        if cfg.is_back_edge(b, h) && body.insert(b) {
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        for &p in &cfg.blocks[b].preds {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

/// Registers defined anywhere in `blocks`, as a bit mask.
fn defs_in(decoded: &[DecodedInst], cfg: &Cfg, blocks: &BTreeSet<usize>) -> u64 {
    let mut mask = 0u64;
    for &b in blocks {
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            if let Some(r) = decoded[pc].dst {
                mask |= 1 << r.index();
            }
        }
    }
    mask
}

impl ZeroTrip {
    /// Computes first-visit edge facts for the main-code CFG.
    pub fn analyze(decoded: &[DecodedInst], cfg: &Cfg) -> ZeroTrip {
        let n = cfg.len();
        let mut out = ZeroTrip {
            infeasible: BTreeSet::new(),
            head_sources: BTreeSet::new(),
        };
        let Some(e) = cfg.entry_block else {
            return out;
        };
        let heads: BTreeSet<usize> = cfg.loop_heads().into_iter().collect();
        // reducibility guard: every back-edge source must lie inside its
        // head's natural loop, else the kill sets below are unreliable
        let loops: Vec<(usize, BTreeSet<usize>, u64)> = heads
            .iter()
            .map(|&h| {
                let body = natural_loop(cfg, h);
                let defs = defs_in(decoded, cfg, &body);
                (h, body, defs)
            })
            .collect();
        for b in 0..n {
            for &s in &cfg.blocks[b].succs {
                if cfg.is_back_edge(b, s) {
                    let Some((_, body, _)) = loops.iter().find(|(h, _, _)| *h == s) else {
                        return out;
                    };
                    if !body.contains(&b) {
                        return out;
                    }
                }
            }
        }

        // one topological (RPO, back edges ignored) constant pass
        let mut exit: Vec<Option<ConstState>> = vec![None; n];
        for &b in cfg.rpo() {
            // merge any-visit states over non-back-edge predecessors
            let mut state: Option<ConstState> = if b == e {
                Some(vec![Some(0); NUM_REGS])
            } else {
                let mut merged: Option<ConstState> = None;
                for &p in &cfg.blocks[b].preds {
                    if cfg.is_back_edge(p, b) {
                        continue;
                    }
                    let Some(px) = &exit[p] else { continue };
                    merged = Some(match merged {
                        None => px.clone(),
                        Some(m) => m
                            .iter()
                            .zip(px.iter())
                            .map(|(&a, &c)| if a == c { a } else { None })
                            .collect(),
                    });
                }
                merged
            };
            let Some(first_visit) = state.clone() else {
                continue;
            };
            // evaluate the block's terminating branch on the first-visit
            // state (heads) / any-visit state (others — identical before
            // the kill below)
            let last = cfg.blocks[b].end - 1;
            if let DecodedOp::Branch { cond, target } = decoded[last].op {
                let mut fv = first_visit.clone();
                for pc in cfg.blocks[b].start..last {
                    const_transfer(&decoded[pc], &mut fv);
                }
                let d = &decoded[last];
                let lv = d.srcs[0].and_then(|r| fv[r.index()]);
                let rv = d.srcs[1].and_then(|r| fv[r.index()]);
                if let (Some(lv), Some(rv)) = (lv, rv) {
                    let taken_block = cfg.block_of_pc(target);
                    let fall_block = cfg.block_of_pc(last + 1);
                    if taken_block != fall_block {
                        let losing = if cond.eval(lv, rv) {
                            fall_block
                        } else {
                            taken_block
                        };
                        if let Some(losing) = losing {
                            if cfg.blocks[b].succs.contains(&losing) {
                                out.infeasible.insert((b, losing));
                                if heads.contains(&b) {
                                    out.head_sources.insert(b);
                                }
                            }
                        }
                    }
                }
            }
            // any-visit state: at a loop head, kill loop-defined registers
            if let Some(st) = &mut state {
                for (h, _, defs) in &loops {
                    if *h == b {
                        for r in 0..NUM_REGS {
                            if defs & (1 << r) != 0 {
                                st[r] = None;
                            }
                        }
                    }
                }
            }
            // transfer to block exit
            let mut st = state.expect("checked above");
            for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                const_transfer(&decoded[pc], &mut st);
            }
            exit[b] = Some(st);
        }
        out
    }

    /// Edges provably untaken on their source's first execution.
    pub fn infeasible_first_visit(&self) -> &BTreeSet<(usize, usize)> {
        &self.infeasible
    }

    /// `true` if every execution path that reaches `target_block` has
    /// executed `must_block` at least once before arriving (modulo the
    /// zero-trip pruning documented on the module).
    ///
    /// Same-block queries return `true`; the caller is responsible for
    /// intra-block pc ordering.
    pub fn must_pass(&self, cfg: &Cfg, must_block: usize, target_block: usize) -> bool {
        if must_block == target_block {
            return true;
        }
        let Some(e) = cfg.entry_block else {
            return false;
        };
        if e == must_block {
            return true;
        }
        // Greatest-fixpoint pruning: start from every infeasible edge not
        // touching the must-block, then repeatedly drop head facts whose
        // source can re-execute in the *currently* pruned graph, until
        // stable. The side condition is checked against the final set —
        // the soundness argument on the module needs exactly that (the
        // minimal counterexample's first pruned-edge traversal lies in the
        // fully pruned graph) — which lets the exit guards of nested loops
        // keep each other's facts alive where one-edge-at-a-time growth
        // would deadlock.
        let mut pruned: BTreeSet<(usize, usize)> = self
            .infeasible
            .iter()
            .filter(|&&(b, s)| b != must_block && s != must_block)
            .copied()
            .collect();
        loop {
            // head facts hold only at the first execution: require that
            // the source cannot re-execute without the must-block
            let stale: Vec<(usize, usize)> = pruned
                .iter()
                .filter(|&&(b, _)| {
                    self.head_sources.contains(&b)
                        && cfg.blocks[b].succs.iter().any(|&n| {
                            !pruned.contains(&(b, n))
                                && n != must_block
                                && (n == b || reaches(cfg, n, b, must_block, &pruned))
                        })
                })
                .copied()
                .collect();
            if stale.is_empty() {
                break;
            }
            for edge in stale {
                pruned.remove(&edge);
            }
        }
        !reaches(cfg, e, target_block, must_block, &pruned)
    }
}

/// BFS reachability in the CFG with one block deleted and an edge set
/// pruned.
fn reaches(
    cfg: &Cfg,
    from: usize,
    to: usize,
    deleted: usize,
    pruned: &BTreeSet<(usize, usize)>,
) -> bool {
    if from == deleted {
        return false;
    }
    if from == to {
        return true;
    }
    let mut seen = vec![false; cfg.len()];
    seen[from] = true;
    let mut queue = vec![from];
    while let Some(b) = queue.pop() {
        for &s in &cfg.blocks[b].succs {
            if s == deleted || pruned.contains(&(b, s)) || seen[s] {
                continue;
            }
            if s == to {
                return true;
            }
            seen[s] = true;
            queue.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{predecode, AluOp, BranchCond, ProgramBuilder, Reg};

    /// fill loop over tmp, then a consumer loop reading it back; returns
    /// (decoded, cfg, store_pc, load_pc).
    fn two_loop_kernel() -> (Vec<DecodedInst>, Cfg, usize, usize) {
        let mut b = ProgramBuilder::new("t");
        let tmp = b.alloc_zeroed(50);
        b.li(Reg(1), tmp);
        b.li(Reg(2), 0);
        b.li(Reg(3), 50);
        let top = b.label();
        let fill_done = b.label();
        b.bind(top).unwrap();
        b.branch(BranchCond::Geu, Reg(2), Reg(3), fill_done);
        b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
        let store_pc = b.store(Reg(2), Reg(7), 0);
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(top);
        b.bind(fill_done).unwrap();
        b.li(Reg(2), 0);
        let top2 = b.label();
        let done = b.label();
        b.bind(top2).unwrap();
        b.branch(BranchCond::Geu, Reg(2), Reg(3), done);
        b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
        let load_pc = b.load(Reg(9), Reg(7), 0);
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(top2);
        b.bind(done).unwrap();
        b.halt();
        let p = b.finish().unwrap();
        let decoded = predecode(&p);
        let cfg = Cfg::build(&decoded, p.code_len, p.entry);
        (decoded, cfg, store_pc, load_pc)
    }

    #[test]
    fn fill_loop_guard_cannot_zero_trip() {
        let (decoded, cfg, store_pc, load_pc) = two_loop_kernel();
        let zt = ZeroTrip::analyze(&decoded, &cfg);
        let store_block = cfg.block_of_pc(store_pc).unwrap();
        let load_block = cfg.block_of_pc(load_pc).unwrap();
        // dominance alone fails: the (statically feasible, dynamically
        // impossible) zero-trip edge skips the fill body
        assert!(!cfg.block_dominates(store_block, load_block));
        // both loop-head exit edges are first-visit infeasible (0 >= 50)
        assert_eq!(zt.infeasible_first_visit().len(), 2);
        // ...and the must-pass query restores the guarantee
        assert!(zt.must_pass(&cfg, store_block, load_block));
    }

    #[test]
    fn unknown_bound_defeats_the_proof() {
        // same shape but the trip count comes from memory: the guard is not
        // first-visit determined, so nothing can be pruned
        let mut b = ProgramBuilder::new("t");
        let tmp = b.alloc_zeroed(50);
        let n_cell = b.alloc_data(&[50]);
        b.li(Reg(1), tmp);
        b.li(Reg(4), n_cell);
        b.load(Reg(3), Reg(4), 0);
        b.li(Reg(2), 0);
        let top = b.label();
        let fill_done = b.label();
        b.bind(top).unwrap();
        b.branch(BranchCond::Geu, Reg(2), Reg(3), fill_done);
        b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
        let store_pc = b.store(Reg(2), Reg(7), 0);
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(top);
        b.bind(fill_done).unwrap();
        let load_pc = b.load(Reg(9), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let decoded = predecode(&p);
        let cfg = Cfg::build(&decoded, p.code_len, p.entry);
        let zt = ZeroTrip::analyze(&decoded, &cfg);
        let store_block = cfg.block_of_pc(store_pc).unwrap();
        let load_block = cfg.block_of_pc(load_pc).unwrap();
        assert!(zt.infeasible_first_visit().is_empty());
        assert!(!zt.must_pass(&cfg, store_block, load_block));
    }

    /// A two-deep nest (outer sweep, inner fill) then a separate consumer:
    /// the inner head's exit fact and the outer head's exit fact each hold
    /// only if the other is pruned, so one-edge-at-a-time pruning deadlocks
    /// — the greatest-fixpoint form must still prove the store runs first.
    #[test]
    fn nested_loop_store_must_pass() {
        let mut b = ProgramBuilder::new("t");
        let tmp = b.alloc_zeroed(64);
        b.li(Reg(1), tmp);
        b.li(Reg(5), 0);
        b.li(Reg(6), 2);
        let outer = b.label();
        let outer_done = b.label();
        b.bind(outer).unwrap();
        b.branch(BranchCond::Geu, Reg(5), Reg(6), outer_done);
        b.li(Reg(2), 0);
        b.li(Reg(3), 64);
        let inner = b.label();
        let inner_done = b.label();
        b.bind(inner).unwrap();
        b.branch(BranchCond::Geu, Reg(2), Reg(3), inner_done);
        b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
        let store_pc = b.store(Reg(2), Reg(7), 0);
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(inner);
        b.bind(inner_done).unwrap();
        b.alui(AluOp::Add, Reg(5), Reg(5), 1);
        b.jump(outer);
        b.bind(outer_done).unwrap();
        let load_pc = b.load(Reg(9), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let decoded = predecode(&p);
        let cfg = Cfg::build(&decoded, p.code_len, p.entry);
        let zt = ZeroTrip::analyze(&decoded, &cfg);
        let store_block = cfg.block_of_pc(store_pc).unwrap();
        let load_block = cfg.block_of_pc(load_pc).unwrap();
        assert!(!cfg.block_dominates(store_block, load_block));
        assert_eq!(zt.infeasible_first_visit().len(), 2);
        assert!(zt.must_pass(&cfg, store_block, load_block));
    }

    #[test]
    fn dominating_block_passes_trivially() {
        let (decoded, cfg, _, load_pc) = two_loop_kernel();
        let zt = ZeroTrip::analyze(&decoded, &cfg);
        let entry_block = cfg.entry_block.unwrap();
        let load_block = cfg.block_of_pc(load_pc).unwrap();
        assert!(zt.must_pass(&cfg, entry_block, load_block));
        assert!(zt.must_pass(&cfg, load_block, load_block), "same block");
    }
}
