//! Forward must-reach dataflow for `REC` checkpoints.
//!
//! Computes, for every reachable program point of the main code, the set of
//! `Hist` keys that have *definitely* been checkpointed by a `REC` on every
//! path from the entry (intersection meet, ⊤-initialised, to fixpoint). The
//! verifier uses it to decide whether an `RCMP`'s `Hist`-sourced operands are
//! covered on all static paths; for keys with a single `REC` site the result
//! coincides with dominance of that site over the `RCMP` (the basic-block
//! dominator query in [`crate::cfg`]), which the verifier uses as a fast
//! path — this analysis is the general case for multiple sites per key.

use std::collections::BTreeMap;

use amnesiac_isa::{DecodedInst, DecodedOp};

use crate::cfg::Cfg;

/// Result of the must-reach analysis over a program's main code.
///
/// Key sets are kept as dense bitsets over the distinct reachable `REC`
/// keys (bit *i* of a row ↔ `keys[i]`): the compile gate re-runs this
/// analysis once per validation round, and `BTreeSet` unions/intersections
/// allocated per block per fixpoint iteration dominated its cost.
#[derive(Debug, Clone)]
pub struct RecCoverage {
    /// Distinct keys with a reachable `REC` site, ascending (the bitset
    /// index space; keys never checkpointed can never be covered).
    keys: Vec<u16>,
    /// Words per bitset row (`keys.len()` bits, rounded up).
    words: usize,
    /// Per-block key bitsets at block entry; `None` means the block was
    /// never reached by the analysis (unreachable from the program entry).
    entry_sets: Vec<Option<Vec<u64>>>,
    /// Reachable `REC` sites per key, in ascending pc order.
    rec_sites: BTreeMap<u16, Vec<usize>>,
}

impl RecCoverage {
    /// Runs the analysis. `decoded` is the full predecoded stream; only
    /// `[0, code_len)` is examined.
    pub fn analyze(decoded: &[DecodedInst], code_len: usize, cfg: &Cfg) -> RecCoverage {
        let code_len = code_len.min(decoded.len());
        let n = cfg.len();
        let mut entry_sets: Vec<Option<Vec<u64>>> = vec![None; n];
        let mut rec_sites: BTreeMap<u16, Vec<usize>> = BTreeMap::new();

        for (pc, inst) in decoded[..code_len].iter().enumerate() {
            if let DecodedOp::Rec { key } = inst.op {
                if cfg.is_reachable_pc(pc) {
                    rec_sites.entry(key).or_default().push(pc);
                }
            }
        }

        // Bitset index space: every key a reachable block can generate is a
        // reachable REC's key, so `rec_sites` already enumerates them all.
        let keys: Vec<u16> = rec_sites.keys().copied().collect();
        let words = keys.len().div_ceil(64).max(1);
        let bit_of = |key: u16| keys.binary_search(&key).ok();

        let Some(entry) = cfg.entry_block else {
            return RecCoverage {
                keys,
                words,
                entry_sets,
                rec_sites,
            };
        };

        // gen[b]: keys checkpointed anywhere in block b (REC never kills).
        // Keys of unreachable RECs are absent from the index space; their
        // blocks' gen rows are never consulted (entry stays `None`).
        let mut gen: Vec<u64> = vec![0; n * words];
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for d in &decoded[blk.start..blk.end] {
                if let DecodedOp::Rec { key } = d.op {
                    if let Some(i) = bit_of(key) {
                        gen[b * words + i / 64] |= 1 << (i % 64);
                    }
                }
            }
        }

        // in[entry] = ∅; in[b] = ∩ preds (in[p] ∪ gen[p]). Unvisited blocks
        // stay ⊤ (`None`) and drop out of the meet. Iterate to fixpoint
        // into one scratch row (sets only shrink, so this terminates); a
        // fresh row is allocated only when a block's set actually changes.
        entry_sets[entry] = Some(vec![0; words]);
        let mut meet = vec![0u64; words];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == entry {
                    continue;
                }
                let mut seen_pred = false;
                for &p in &cfg.blocks[b].preds {
                    let Some(in_p) = &entry_sets[p] else {
                        continue;
                    };
                    let gen_p = &gen[p * words..(p + 1) * words];
                    if seen_pred {
                        for (m, (i, g)) in meet.iter_mut().zip(in_p.iter().zip(gen_p)) {
                            *m &= i | g;
                        }
                    } else {
                        for (m, (i, g)) in meet.iter_mut().zip(in_p.iter().zip(gen_p)) {
                            *m = i | g;
                        }
                        seen_pred = true;
                    }
                }
                if seen_pred && entry_sets[b].as_deref() != Some(&meet) {
                    entry_sets[b] = Some(meet.clone());
                    changed = true;
                }
            }
        }

        RecCoverage {
            keys,
            words,
            entry_sets,
            rec_sites,
        }
    }

    /// Reachable `REC` pcs checkpointing `key`, in ascending order.
    pub fn sites(&self, key: u16) -> &[usize] {
        self.rec_sites
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over `(key, reachable sites)` pairs in key order.
    pub fn site_map(&self) -> impl Iterator<Item = (u16, &[usize])> {
        self.rec_sites.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Returns `true` if `key` has definitely been checkpointed on every
    /// path from the entry to the instruction at `pc` (exclusive of `pc`
    /// itself). `false` when `pc` is unreachable or out of range.
    pub fn covered_at(&self, decoded: &[DecodedInst], cfg: &Cfg, pc: usize, key: u16) -> bool {
        let Some(b) = cfg.block_of_pc(pc) else {
            return false;
        };
        let Some(at_entry) = &self.entry_sets[b] else {
            return false;
        };
        if let Ok(i) = self.keys.binary_search(&key) {
            debug_assert_eq!(self.words, at_entry.len());
            if at_entry[i / 64] & (1 << (i % 64)) != 0 {
                return true;
            }
        }
        let start = cfg.blocks[b].start;
        decoded[start..pc]
            .iter()
            .any(|d| matches!(d.op, DecodedOp::Rec { key: k } if k == key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{predecode, BranchCond, Instruction, Program, Reg};

    fn rec(key: u16) -> Instruction {
        Instruction::Rec {
            key,
            srcs: [Some(Reg(1)), None, None],
        }
    }

    fn program(insts: Vec<Instruction>) -> Program {
        let mut p = Program::new("df-test");
        p.code_len = insts.len();
        p.instructions = insts;
        p
    }

    fn branch(target: usize) -> Instruction {
        Instruction::Branch {
            cond: BranchCond::Eq,
            lhs: Reg(0),
            rhs: Reg(0),
            target,
        }
    }

    #[test]
    fn straight_line_coverage_is_positional() {
        let p = program(vec![rec(7), Instruction::Halt]);
        let d = predecode(&p);
        let cfg = Cfg::build(&d, p.code_len, 0);
        let cov = RecCoverage::analyze(&d, p.code_len, &cfg);
        assert!(!cov.covered_at(&d, &cfg, 0, 7), "not before the REC");
        assert!(cov.covered_at(&d, &cfg, 1, 7), "after the REC");
        assert_eq!(cov.sites(7), &[0]);
    }

    #[test]
    fn one_armed_rec_does_not_cover_the_join() {
        // 0: branch 3 | 1: rec 5, 2: branch 3 | 3: halt
        let p = program(vec![branch(3), rec(5), branch(3), Instruction::Halt]);
        let d = predecode(&p);
        let cfg = Cfg::build(&d, p.code_len, 0);
        let cov = RecCoverage::analyze(&d, p.code_len, &cfg);
        assert!(
            !cov.covered_at(&d, &cfg, 3, 5),
            "a path skipping the REC reaches the join"
        );
    }

    #[test]
    fn both_arms_cover_the_join() {
        // 0: branch 3 | 1: rec 5, 2: branch 4 | 3: rec 5 | 4: halt
        let p = program(vec![
            branch(3),
            rec(5),
            branch(4),
            rec(5),
            Instruction::Halt,
        ]);
        let d = predecode(&p);
        let cfg = Cfg::build(&d, p.code_len, 0);
        let cov = RecCoverage::analyze(&d, p.code_len, &cfg);
        assert!(cov.covered_at(&d, &cfg, 4, 5), "both arms checkpoint");
        assert_eq!(cov.sites(5), &[1, 3], "two distinct sites");
    }

    #[test]
    fn loop_carried_rec_covers_after_first_iteration_only() {
        // 0: branch 4 (zero-trip exit) | 1: rec 9, 2: branch 4, 3: branch 1 | 4: halt
        let p = program(vec![
            branch(4),
            rec(9),
            branch(4),
            branch(1),
            Instruction::Halt,
        ]);
        let d = predecode(&p);
        let cfg = Cfg::build(&d, p.code_len, 0);
        let cov = RecCoverage::analyze(&d, p.code_len, &cfg);
        assert!(
            !cov.covered_at(&d, &cfg, 4, 9),
            "the zero-trip path reaches the exit without checkpointing"
        );
        assert!(
            cov.covered_at(&d, &cfg, 2, 9),
            "inside the body, after the REC"
        );
    }

    #[test]
    fn unreachable_rec_is_ignored() {
        // 0: jump 2 | 1: rec 3 (dead) | 2: halt
        let p = program(vec![
            Instruction::Jump { target: 2 },
            rec(3),
            Instruction::Halt,
        ]);
        let d = predecode(&p);
        let cfg = Cfg::build(&d, p.code_len, 0);
        let cov = RecCoverage::analyze(&d, p.code_len, &cfg);
        assert!(cov.sites(3).is_empty(), "dead RECs contribute no sites");
        assert!(!cov.covered_at(&d, &cfg, 2, 3));
    }
}
