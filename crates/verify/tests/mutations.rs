//! Adversarial mutation tests: corrupt a pipeline-produced annotated binary
//! in four structurally distinct ways and check that the static verifier
//! catches each with its own diagnostic kind. Mutation sites are chosen by
//! the deterministic [`amnesiac_rng::Rng`], so a seed bump widens coverage
//! without changing the harness.

use amnesiac_compiler::{compile, CompileOptions};
use amnesiac_isa::{Instruction, OperandSource, Program, Reg, SliceId};
use amnesiac_profile::profile_program;
use amnesiac_rng::Rng;
use amnesiac_sim::CoreConfig;
use amnesiac_verify::{verify, DiagnosticKind};
use amnesiac_workloads::{
    build_control, build_extended, build_focal, Scale, Workload, CONTROL_NAMES, EXTENDED_NAMES,
    FOCAL_NAMES,
};

/// Compiles a workload into a verifier-clean annotated binary.
fn annotated(workload: &Workload) -> Program {
    let config = CoreConfig::paper();
    let (profile, _) = profile_program(&workload.program, &config).expect("profiling succeeds");
    let (binary, _) =
        compile(&workload.program, &profile, &CompileOptions::default()).expect("compile succeeds");
    binary
}

/// Binaries across all three suites that actually carry slices (many
/// test-scale kernels swap nothing, which would make a mutation vacuous).
fn sliced_binaries() -> Vec<Program> {
    let workloads = FOCAL_NAMES
        .iter()
        .map(|n| build_focal(n, Scale::Test))
        .chain(CONTROL_NAMES.iter().map(|n| build_control(n, Scale::Test)))
        .chain(
            EXTENDED_NAMES
                .iter()
                .map(|n| build_extended(n, Scale::Test)),
        );
    workloads
        .map(|w| annotated(&w))
        .filter(|b| !b.slices.is_empty())
        .collect()
}

/// Main-code pcs of reachable `REC`s whose key some slice actually reads
/// from the `Hist` (deleting one of these must starve that slice).
fn needed_rec_pcs(binary: &Program) -> Vec<usize> {
    let needed: std::collections::BTreeSet<u16> =
        binary.slices.iter().flat_map(|m| m.hist_keys()).collect();
    binary.instructions[..binary.code_len]
        .iter()
        .enumerate()
        .filter_map(|(pc, inst)| match inst {
            Instruction::Rec { key, .. } if needed.contains(key) => Some(pc),
            _ => None,
        })
        .collect()
}

#[test]
fn deleting_a_rec_is_an_uncheckpointed_hist_error() {
    let mut rng = Rng::seed_from_u64(0xDE1E7E);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let recs = needed_rec_pcs(&binary);
        let Some(&pc) = recs.get(rng.below(recs.len().max(1) as u64) as usize) else {
            continue;
        };
        // A forward jump of one is a no-op in the CFG; only the checkpoint
        // disappears.
        binary.instructions[pc] = Instruction::Jump { target: pc + 1 };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::UncheckpointedHist),
            "{}: deleting the REC at pc {pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 2, "too few binaries had deletable RECs");
}

#[test]
fn retargeting_an_rcmp_is_a_bad_target_error() {
    let mut rng = Rng::seed_from_u64(0x47C0DE);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let rcmps: Vec<usize> = binary.instructions[..binary.code_len]
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| matches!(i, Instruction::Rcmp { .. }).then_some(pc))
            .collect();
        let pc = rcmps[rng.below(rcmps.len() as u64) as usize];
        let bogus = SliceId(binary.slices.len() as u32 + 1 + rng.below(100) as u32);
        if let Instruction::Rcmp { slice, .. } = &mut binary.instructions[pc] {
            *slice = bogus;
        }
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::RcmpBadTarget),
            "{}: retargeting the RCMP at pc {pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn injecting_a_store_into_a_slice_body_is_a_side_effect_error() {
    let mut rng = Rng::seed_from_u64(0x57073);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let meta = &binary.slices[rng.below(binary.slices.len() as u64) as usize];
        // Any body position except the terminating RTN.
        let pos = meta.entry + rng.below((meta.len - 1) as u64) as usize;
        binary.instructions[pos] = Instruction::Store {
            src: Reg(1),
            base: Reg(2),
            offset: 0,
        };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::SliceSideEffect),
            "{}: a Store at body pc {pos} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn dropping_a_rtn_is_a_missing_rtn_error() {
    let mut rng = Rng::seed_from_u64(0x0447);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let meta = &binary.slices[rng.below(binary.slices.len() as u64) as usize];
        let rtn_pc = meta.entry + meta.len - 1;
        // Replace the terminator with pure compute: the body stays clean,
        // only the missing RTN can trip the verifier.
        binary.instructions[rtn_pc] = Instruction::Alu {
            op: amnesiac_isa::AluOp::Add,
            dst: Reg(1),
            lhs: Reg(1),
            rhs: Reg(1),
        };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::SliceMissingRtn),
            "{}: dropping the RTN at pc {rtn_pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(
            !report.has_kind(DiagnosticKind::SliceSideEffect),
            "the compute replacement must not read as a side effect"
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn widening_a_hist_key_past_the_table_is_an_out_of_range_error() {
    let mut rng = Rng::seed_from_u64(0x4157_0CAB);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        // every (slice, plan, source-slot) carrying a checkpointed operand
        let sites: Vec<(usize, usize, usize)> = binary
            .slices
            .iter()
            .enumerate()
            .flat_map(|(i, m)| {
                m.plans.iter().enumerate().flat_map(move |(k, p)| {
                    p.sources.iter().enumerate().filter_map(move |(j, s)| {
                        matches!(s, Some(OperandSource::Hist { .. })).then_some((i, k, j))
                    })
                })
            })
            .collect();
        let Some(&(i, k, j)) = sites.get(rng.below(sites.len().max(1) as u64) as usize) else {
            continue;
        };
        if let Some(OperandSource::Hist { key }) = &mut binary.slices[i].plans[k].sources[j] {
            *key = u16::MAX; // far past any checkpoint table capacity
        }
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::HistKeyOutOfRange),
            "{}: widening the Hist key of slice {i} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 1, "no binary carried a Hist operand to widen");
}

/// A pipeline-compiled constant-fill kernel: `tmp[i] = 42` in a counted
/// loop, then a reload-sum loop. Deliberately tiny caches make the reloads
/// miss, so the compiler slices them; the one-instruction recomputation
/// folds to 42 and the footprint bounds the loaded region to `[0, 42]`.
fn constant_fill_binary() -> Program {
    use amnesiac_isa::{AluOp, BranchCond, ProgramBuilder};
    use amnesiac_mem::{CacheConfig, HierarchyConfig};
    let mut b = ProgramBuilder::new("const-fill");
    let tmp = b.alloc_zeroed(50);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    b.li(Reg(1), tmp);
    b.li(Reg(2), 0);
    b.li(Reg(3), 50);
    b.li(Reg(4), 42);
    let top = b.label();
    let fill_done = b.label();
    b.bind(top).unwrap();
    b.branch(BranchCond::Geu, Reg(2), Reg(3), fill_done);
    b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
    b.store(Reg(4), Reg(7), 0);
    b.alui(AluOp::Add, Reg(2), Reg(2), 1);
    b.jump(top);
    b.bind(fill_done).unwrap();
    b.li(Reg(2), 0);
    b.li(Reg(8), 0);
    let top2 = b.label();
    let done = b.label();
    b.bind(top2).unwrap();
    b.branch(BranchCond::Geu, Reg(2), Reg(3), done);
    b.alu(AluOp::Add, Reg(7), Reg(1), Reg(2));
    b.load(Reg(9), Reg(7), 0);
    b.alu(AluOp::Add, Reg(8), Reg(8), Reg(9));
    b.alui(AluOp::Add, Reg(2), Reg(2), 1);
    b.jump(top2);
    b.bind(done).unwrap();
    b.li(Reg(10), out);
    b.store(Reg(8), Reg(10), 0);
    b.halt();
    let p = b.finish().unwrap();
    let mut config = CoreConfig::paper();
    config.hierarchy = HierarchyConfig {
        l1i: CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        },
        l1d: CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 8,
        },
        l2: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 8,
        },
        next_line_prefetch: false,
    };
    let (profile, _) = profile_program(&p, &config).expect("profiling succeeds");
    let (binary, _) = compile(&p, &profile, &CompileOptions::default()).expect("compile succeeds");
    assert!(!binary.slices.is_empty(), "the constant reload must slice");
    binary
}

#[test]
fn constant_folding_a_divergent_recomputation_is_flagged() {
    let mut binary = constant_fill_binary();
    assert!(verify(&binary).is_clean(), "the unmutated kernel is clean");
    // Push the body's immediate far outside any value the loaded region
    // can hold: the fold still closes, but now provably diverges from the
    // footprint's loaded-value bound at every firing.
    let li_pcs: Vec<usize> = binary
        .slices
        .iter()
        .flat_map(|m| m.entry..m.entry + m.compute_len())
        .filter(|&pc| matches!(binary.instructions[pc], Instruction::Li { .. }))
        .collect();
    assert!(!li_pcs.is_empty(), "the slice body recomputes via an Li");
    for pc in li_pcs {
        if let Instruction::Li { imm, .. } = &mut binary.instructions[pc] {
            *imm = imm.wrapping_add(0x00AB_5EED_0000);
        }
    }
    let report = verify(&binary);
    assert!(
        report.has_kind(DiagnosticKind::RcmpDivergent),
        "constant-folding the recomputation away from the loaded bound went unnoticed: {report:?}"
    );
    assert_eq!(
        DiagnosticKind::RcmpDivergent.severity(),
        amnesiac_verify::Severity::Warn,
        "divergence is a profitability warning, not a soundness error"
    );
}

#[test]
fn the_four_mutation_classes_map_to_four_distinct_kinds() {
    let kinds = [
        DiagnosticKind::UncheckpointedHist,
        DiagnosticKind::RcmpBadTarget,
        DiagnosticKind::SliceSideEffect,
        DiagnosticKind::SliceMissingRtn,
    ];
    let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
    assert_eq!(names.len(), kinds.len(), "kinds must be distinguishable");
    for k in kinds {
        assert_eq!(k.severity(), amnesiac_verify::Severity::Error);
    }
}
