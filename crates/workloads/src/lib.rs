#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-workloads
//!
//! Benchmark kernels written in the amnesiac mini-ISA.
//!
//! The paper evaluates 33 benchmarks from SPEC-2006, NAS, PARSEC and
//! Rodinia and focuses on the 11 that respond to amnesic execution. We
//! cannot run x86 binaries on the mini-ISA, so each focal benchmark is
//! substituted by a hand-written kernel implementing the *same algorithmic
//! pattern*, with working sets sized against the paper's Table 3 hierarchy
//! (32 KB L1-D, 512 KB L2) so that the memory-access profile of its
//! swappable loads matches the paper's Table 5, and producer-expression
//! shapes chosen so slice lengths match Fig. 6. Five compute-bound
//! controls stand in for "the rest" — benchmarks the paper reports as not
//! benefiting.
//!
//! | name | models | pattern |
//! |---|---|---|
//! | `mcf` | SPEC mcf | pointer-chasing reduced-cost updates over a memory-resident arc array |
//! | `sx` | SPEC sphinx3 | GMM partial-score table build + frame scoring |
//! | `cg` | NAS CG | conjugate-gradient sparse matvec iterations |
//! | `is` | NAS IS | integer bucket ranking of a large key space |
//! | `ca` | PARSEC canneal | annealing cost table with random swap reads |
//! | `fs` | PARSEC facesim | dense per-node physics update chains |
//! | `fe` | PARSEC ferret | feature-vector distance scoring |
//! | `rt` | PARSEC raytrace | ray-sphere intersection against a hot scene table |
//! | `bp` | Rodinia backprop | MLP forward activations reused in backward pass |
//! | `bfs` | Rodinia bfs | level-synchronous BFS over an adjacency list |
//! | `sr` | Rodinia srad | SRAD-style stencil relaxation |
//! | `blackscholes` … | PARSEC/Rodinia controls | compute-bound kernels with few swappable loads |
//! | `perlbench` … `particlefilter` | Table 2 remainder | 17 kernels completing the paper's 33-benchmark deployment: mostly non-responders, with `lbm`/`soplex`/`GemsFDTD`/`nw` as the paper's "4 with more than 5% gain" and `mg` slightly degrading |

mod control;
mod extended;
mod nas;
mod parsec;
mod rodinia;
mod spec;
pub(crate) mod util;

use amnesiac_isa::Program;

/// Benchmark suite a kernel models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec,
    /// NAS Parallel Benchmarks.
    Nas,
    /// PARSEC.
    Parsec,
    /// Rodinia.
    Rodinia,
    /// Compute-bound control (stands in for the paper's non-responders).
    Control,
}

/// Problem scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-millisecond runs).
    Test,
    /// Evaluation inputs sized against the paper's cache hierarchy.
    Paper,
}

/// A named, buildable benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in the paper's figures (e.g. `"sx"`).
    pub name: &'static str,
    /// The benchmark this kernel models.
    pub models: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// The built program.
    pub program: Program,
}

/// Builds one focal benchmark by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`FOCAL_NAMES`].
pub fn build_focal(name: &str, scale: Scale) -> Workload {
    match name {
        "mcf" => Workload {
            name: "mcf",
            models: "SPEC mcf",
            suite: Suite::Spec,
            program: spec::mcf(scale),
        },
        "sx" => Workload {
            name: "sx",
            models: "SPEC sphinx3",
            suite: Suite::Spec,
            program: spec::sphinx3(scale),
        },
        "cg" => Workload {
            name: "cg",
            models: "NAS CG",
            suite: Suite::Nas,
            program: nas::cg(scale),
        },
        "is" => Workload {
            name: "is",
            models: "NAS IS",
            suite: Suite::Nas,
            program: nas::is(scale),
        },
        "ca" => Workload {
            name: "ca",
            models: "PARSEC canneal",
            suite: Suite::Parsec,
            program: parsec::canneal(scale),
        },
        "fs" => Workload {
            name: "fs",
            models: "PARSEC facesim",
            suite: Suite::Parsec,
            program: parsec::facesim(scale),
        },
        "fe" => Workload {
            name: "fe",
            models: "PARSEC ferret",
            suite: Suite::Parsec,
            program: parsec::ferret(scale),
        },
        "rt" => Workload {
            name: "rt",
            models: "PARSEC raytrace",
            suite: Suite::Parsec,
            program: parsec::raytrace(scale),
        },
        "bp" => Workload {
            name: "bp",
            models: "Rodinia backprop",
            suite: Suite::Rodinia,
            program: rodinia::backprop(scale),
        },
        "bfs" => Workload {
            name: "bfs",
            models: "Rodinia bfs",
            suite: Suite::Rodinia,
            program: rodinia::bfs(scale),
        },
        "sr" => Workload {
            name: "sr",
            models: "Rodinia srad",
            suite: Suite::Rodinia,
            program: rodinia::srad(scale),
        },
        other => panic!("unknown focal benchmark `{other}`"),
    }
}

/// Builds one control benchmark by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`CONTROL_NAMES`].
pub fn build_control(name: &str, scale: Scale) -> Workload {
    let program = match name {
        "blackscholes" => control::blackscholes(scale),
        "swaptions" => control::swaptions(scale),
        "freqmine" => control::freqmine(scale),
        "kmeans" => control::kmeans(scale),
        "hotspot" => control::hotspot(scale),
        other => panic!("unknown control benchmark `{other}`"),
    };
    Workload {
        name: CONTROL_NAMES
            .iter()
            .find(|&&n| n == name)
            .expect("checked above"),
        models: "compute-bound control",
        suite: Suite::Control,
        program,
    }
}

/// The 11 focal benchmarks, in the paper's figure order.
pub const FOCAL_NAMES: [&str; 11] = [
    "mcf", "sx", "cg", "is", "ca", "fs", "fe", "rt", "bp", "bfs", "sr",
];

/// The compute-bound controls.
pub const CONTROL_NAMES: [&str; 5] = ["blackscholes", "swaptions", "freqmine", "kmeans", "hotspot"];

/// The remaining benchmarks of the paper's Table 2 (11 focal + 5 controls
/// + these 17 = the full 33-benchmark deployment).
pub const EXTENDED_NAMES: [&str; 17] = [
    "perlbench",
    "gobmk",
    "calculix",
    "GemsFDTD",
    "libquantum",
    "soplex",
    "lbm",
    "omnetpp",
    "mg",
    "ft",
    "x264",
    "dedup",
    "fluidanimate",
    "streamcluster",
    "bodytrack",
    "nw",
    "particlefilter",
];

/// Builds one of the extended (Table 2 remainder) benchmarks by name.
///
/// # Panics
///
/// Panics on an unknown name; see [`EXTENDED_NAMES`].
pub fn build_extended(name: &str, scale: Scale) -> Workload {
    let (program, suite) = match name {
        "perlbench" => (extended::perlbench(scale), Suite::Spec),
        "gobmk" => (extended::gobmk(scale), Suite::Spec),
        "calculix" => (extended::calculix(scale), Suite::Spec),
        "GemsFDTD" => (extended::gemsfdtd(scale), Suite::Spec),
        "libquantum" => (extended::libquantum(scale), Suite::Spec),
        "soplex" => (extended::soplex(scale), Suite::Spec),
        "lbm" => (extended::lbm(scale), Suite::Spec),
        "omnetpp" => (extended::omnetpp(scale), Suite::Spec),
        "mg" => (extended::mg(scale), Suite::Nas),
        "ft" => (extended::ft(scale), Suite::Nas),
        "x264" => (extended::x264(scale), Suite::Parsec),
        "dedup" => (extended::dedup(scale), Suite::Parsec),
        "fluidanimate" => (extended::fluidanimate(scale), Suite::Parsec),
        "streamcluster" => (extended::streamcluster(scale), Suite::Parsec),
        "bodytrack" => (extended::bodytrack(scale), Suite::Parsec),
        "nw" => (extended::nw(scale), Suite::Rodinia),
        "particlefilter" => (extended::particlefilter(scale), Suite::Rodinia),
        other => panic!("unknown extended benchmark `{other}`"),
    };
    let name = EXTENDED_NAMES
        .iter()
        .find(|&&n| n == name)
        .expect("checked above");
    Workload {
        name,
        models: "Table 2 remainder",
        suite,
        program,
    }
}

/// Builds the extended benchmarks.
pub fn extended_workloads(scale: Scale) -> Vec<Workload> {
    EXTENDED_NAMES
        .iter()
        .map(|n| build_extended(n, scale))
        .collect()
}

/// Seeded variants of the input-dependent focal benchmarks, for
/// cross-input (train/test) studies: the program *structure* is identical
/// for every seed; only the read-only input data changes.
pub fn build_focal_with_input(name: &str, scale: Scale, seed: u64) -> Workload {
    let program = match name {
        "mcf" => spec::mcf_with_input(scale, seed),
        "is" => nas::is_with_input(scale, seed),
        "ca" => parsec::canneal_with_input(scale, seed),
        other => panic!("no seeded variant for `{other}`"),
    };
    let mut w = build_focal(name, scale);
    w.program = program;
    w
}

/// Builds the paper's full 33-benchmark deployment: 11 focal + 5 controls
/// + 17 extended.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    focal_workloads(scale)
        .into_iter()
        .chain(control_workloads(scale))
        .chain(extended_workloads(scale))
        .collect()
}

/// Builds all focal benchmarks.
pub fn focal_workloads(scale: Scale) -> Vec<Workload> {
    FOCAL_NAMES.iter().map(|n| build_focal(n, scale)).collect()
}

/// Builds all control benchmarks.
pub fn control_workloads(scale: Scale) -> Vec<Workload> {
    CONTROL_NAMES
        .iter()
        .map(|n| build_control(n, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_and_validates_at_test_scale() {
        for w in focal_workloads(Scale::Test)
            .into_iter()
            .chain(control_workloads(Scale::Test))
        {
            amnesiac_isa::validate::validate(&w.program)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.name));
            assert!(!w.program.output.is_empty(), "{} declares output", w.name);
        }
    }

    #[test]
    fn registry_is_consistent() {
        assert_eq!(focal_workloads(Scale::Test).len(), FOCAL_NAMES.len());
        assert_eq!(control_workloads(Scale::Test).len(), CONTROL_NAMES.len());
        let names: Vec<_> = focal_workloads(Scale::Test)
            .iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, FOCAL_NAMES.to_vec());
    }

    #[test]
    fn full_deployment_has_33_benchmarks_like_table_2() {
        let all = all_workloads(Scale::Test);
        assert_eq!(all.len(), 33, "11 focal + 5 controls + 17 extended");
        // names are unique
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 33);
        for w in &all {
            amnesiac_isa::validate::validate(&w.program)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.name));
        }
    }

    #[test]
    #[should_panic(expected = "unknown focal benchmark")]
    fn unknown_name_panics() {
        build_focal("nope", Scale::Test);
    }
}
