#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-cache
//!
//! Content-addressed store for compiled artifacts — the annotated
//! [`Program`] plus its [`CompileReport`] — so a byte-identical
//! (program, options) pair is compiled once, not once per request.
//!
//! Three layers (DESIGN.md §4f):
//!
//! * **Key derivation** — a 128-bit [`hash128`](amnesiac_mem::hash128)
//!   over the canonical program image ([`encode_program`]), the
//!   [`CompileOptions`] fingerprint, and [`CACHE_SCHEMA_VERSION`].
//!   Bumping the schema version invalidates every prior key, which is the
//!   *only* invalidation rule: entries are never migrated or trusted across
//!   pipeline changes.
//! * **Sharded in-memory LRU** with a byte budget and single-flight
//!   deduplication: N concurrent requests for one key block on one
//!   compilation and all receive the shared artifact ([`CompileCache`]).
//! * **Disk persistence** ([`CompileCache::persistent`]) with a versioned
//!   binary framing, loaded lazily on first miss so warm restarts serve
//!   hits without recompiling. Corrupt or version-mismatched entries are
//!   discarded, never trusted.
//!
//! The profile is deliberately **not** part of the key: every in-repo
//! caller derives it deterministically from the program, so
//! (program, options) fully determines the artifact. Callers that profile
//! differently must use distinct caches.

mod codec;
mod disk;
mod store;

use amnesiac_compiler::{ArtifactStore, CompileError, CompileOptions, CompileReport};
use amnesiac_isa::{encode_program, Program};
use amnesiac_mem::hash128;
use amnesiac_telemetry::Json;
use std::sync::atomic::{AtomicU64, Ordering};

pub use codec::{report_from_json, report_to_json};
pub use store::CompileCache;

/// Version of the (pipeline semantics, report codec, disk framing) triple.
///
/// Part of every cache key, so bumping it orphans all previously stored
/// entries — in memory and on disk — at once. Bump whenever the compile
/// pipeline's output for a fixed input can change, or when the report
/// codec or disk framing changes shape.
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// A compiled artifact: the annotated binary and its per-site report.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileArtifact {
    /// Annotated program as returned by `amnesiac_compiler::compile`.
    pub program: Program,
    /// The matching compile report.
    pub report: CompileReport,
}

impl CompileArtifact {
    /// Approximate resident size in bytes, for the LRU byte budget.
    ///
    /// Counts the canonical program image plus a fixed-cost estimate per
    /// report decision/diagnostic — an accounting figure, not an exact
    /// allocation measurement.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let program = encode_program(&self.program).len();
        let report = self.report.decisions.len() * 96
            + self.report.pc_map.len() * 8
            + self.report.verify.diagnostics.len() * 128
            + 256;
        program + report
    }
}

/// Derives the content-addressed key for a compile artifact.
///
/// Stable across runs and processes: the program contributes its canonical
/// [`encode_program`] image, the options contribute their full `Debug`
/// fingerprint (every field, including the energy model's per-class EPI
/// values, with shortest-round-trip float formatting), and
/// [`CACHE_SCHEMA_VERSION`] ties the key to the pipeline generation.
#[must_use]
pub fn artifact_key(program: &Program, options: &CompileOptions) -> u128 {
    let image = encode_program(program);
    let fingerprint = format!("{options:?}");
    hash128(&[
        b"artifact",
        &image,
        fingerprint.as_bytes(),
        &CACHE_SCHEMA_VERSION.to_le_bytes(),
    ])
}

/// Derives the key for a cached disassembly listing of `program`.
///
/// Tagged distinctly from [`artifact_key`] so the two key spaces cannot
/// collide even for the same program bytes.
#[must_use]
pub fn listing_key(program: &Program) -> u128 {
    let image = encode_program(program);
    hash128(&[b"listing", &image, &CACHE_SCHEMA_VERSION.to_le_bytes()])
}

/// Monotonic cache counters, updated lock-free by every request path.
///
/// `bytes` is a gauge (resident artifact bytes under the LRU budget); the
/// rest only ever increase. Exposed as the `cache` object in
/// `CompileReport` JSON exports and the serve `stats` payload.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Requests answered from memory (including entries faulted in from
    /// disk — those also count a `disk_loads`).
    pub hits: AtomicU64,
    /// Requests that ran the compile pipeline.
    pub misses: AtomicU64,
    /// Requests that blocked on another request's in-flight compilation
    /// and received the shared artifact.
    pub inflight_waits: AtomicU64,
    /// Entries dropped by the byte-budget LRU.
    pub evictions: AtomicU64,
    /// Entries faulted in from the persistent store.
    pub disk_loads: AtomicU64,
    /// Resident artifact bytes currently held in memory (gauge).
    pub bytes: AtomicU64,
}

impl CacheStats {
    /// The counters as an ordered JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("hits", self.hits.load(Ordering::Relaxed))
            .with("misses", self.misses.load(Ordering::Relaxed))
            .with(
                "inflight_waits",
                self.inflight_waits.load(Ordering::Relaxed),
            )
            .with("evictions", self.evictions.load(Ordering::Relaxed))
            .with("disk_loads", self.disk_loads.load(Ordering::Relaxed))
            .with("bytes", self.bytes.load(Ordering::Relaxed))
    }
}

impl ArtifactStore for CompileCache {
    fn get_or_compile(
        &self,
        program: &Program,
        options: &CompileOptions,
        compute: &mut dyn FnMut() -> Result<(Program, CompileReport), CompileError>,
    ) -> Result<(Program, CompileReport), CompileError> {
        let artifact = self.get_or_compile_arc(program, options, compute)?;
        Ok((artifact.program.clone(), artifact.report.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn renamed_program(name: &str) -> Program {
        let mut p = sample_program();
        p.name = name.to_string();
        p
    }

    fn sample_program() -> Program {
        let w = amnesiac_workloads::build_focal("is", amnesiac_workloads::Scale::Test);
        w.program
    }

    #[test]
    fn artifact_key_is_stable_and_content_sensitive() {
        let a = sample_program();
        let opts = CompileOptions::default();
        let k1 = artifact_key(&a, &opts);
        assert_eq!(k1, artifact_key(&a, &opts), "same content, same key");

        let b = renamed_program("renamed");
        assert_ne!(k1, artifact_key(&b, &opts), "name is part of the image");

        let mut mutated = a.clone();
        mutated.data.set(0, mutated.data.get(0).wrapping_add(1));
        assert_ne!(k1, artifact_key(&mutated, &opts), "data mutation must miss");
    }

    #[test]
    fn artifact_key_sees_every_option_field() {
        let p = sample_program();
        let base = CompileOptions::default();
        let k = artifact_key(&p, &base);

        let mut o = base.clone();
        o.max_height += 1;
        assert_ne!(k, artifact_key(&p, &o));

        let mut o = base.clone();
        o.slice_set = amnesiac_compiler::SliceSetPolicy::Oracle;
        assert_ne!(k, artifact_key(&p, &o));

        let mut o = base.clone();
        o.validate = false;
        assert_ne!(k, artifact_key(&p, &o));

        let mut o = base.clone();
        o.replay_fuse += 1;
        assert_ne!(k, artifact_key(&p, &o));
    }

    #[test]
    fn listing_key_space_is_disjoint_from_artifact_keys() {
        let p = sample_program();
        assert_ne!(
            listing_key(&p),
            artifact_key(&p, &CompileOptions::default()),
            "tag must separate the key spaces"
        );
        assert_eq!(listing_key(&p), listing_key(&p));
    }

    #[test]
    fn stats_json_has_the_contracted_fields() {
        let stats = CacheStats::default();
        stats.hits.store(3, Ordering::Relaxed);
        let json = stats.to_json();
        for field in [
            "hits",
            "misses",
            "inflight_waits",
            "evictions",
            "disk_loads",
            "bytes",
        ] {
            assert!(json.get(field).is_some(), "missing {field}");
        }
        assert_eq!(json.get("hits").and_then(Json::as_f64), Some(3.0));
    }
}
