//! Property tests for the consistent-hash placement ring: deterministic
//! placement, bounded key movement on a member leave, and uniformity of
//! the paper's 33-benchmark deployment across a small cluster.

use amnesiac_serve::{Membership, Ring, WorkerId};
use amnesiac_workloads::{CONTROL_NAMES, EXTENDED_NAMES, FOCAL_NAMES};

/// The 33 `bench:NAME` routing keys of the full Table 2 deployment —
/// exactly what the cluster routes in practice.
fn workload_keys() -> Vec<String> {
    FOCAL_NAMES
        .iter()
        .chain(CONTROL_NAMES.iter())
        .chain(EXTENDED_NAMES.iter())
        .map(|name| format!("bench:{name}"))
        .collect()
}

#[test]
fn placement_is_deterministic_across_rebuilds_and_instances() {
    let keys = workload_keys();
    assert_eq!(keys.len(), 33);
    let workers: Vec<WorkerId> = vec![0, 1, 2, 3];
    let first = Ring::build(&workers);
    // A second instance (different build order, fresh allocation) and a
    // membership-driven rebuild must place every key identically.
    let second = Ring::build(&[3, 1, 0, 2]);
    let via_membership = {
        let addrs: Vec<std::net::SocketAddr> = (0..4)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
            .collect();
        Membership::new(&addrs)
    };
    for key in &keys {
        let owner = first.route(key);
        assert!(owner.is_some(), "{key} unplaced");
        assert_eq!(owner, second.route(key), "{key} differs across instances");
        assert_eq!(
            owner,
            via_membership.route(key).map(|(id, _, _)| id),
            "{key} differs via membership"
        );
    }
}

#[test]
fn a_leave_moves_less_than_two_over_n_of_the_keys() {
    // Structural ring property: survivors' points do not move, so the
    // only keys that move are those the leaver owned (~1/N). Assert the
    // ISSUE's < 2/N bound over a large synthetic key population for
    // every possible leaver.
    let n = 5u64;
    let workers: Vec<WorkerId> = (0..n).collect();
    let before = Ring::build(&workers);
    let keys: Vec<String> = (0..10_000).map(|i| format!("key-{i}")).collect();
    for leaver in 0..n {
        let survivors: Vec<WorkerId> = (0..n).filter(|&w| w != leaver).collect();
        let after = Ring::build(&survivors);
        let mut moved = 0usize;
        for key in &keys {
            let (was, is) = (before.route(key), after.route(key));
            if was != is {
                moved += 1;
                // Only the leaver's keys are allowed to move, and they
                // must land on a survivor.
                assert_eq!(was, Some(leaver), "{key} moved off a survivor");
                assert!(is.is_some_and(|w| w != leaver));
            }
        }
        let bound = (2.0 / n as f64) * keys.len() as f64;
        assert!(
            (moved as f64) < bound,
            "leaver {leaver}: {moved} of {} keys moved (bound {bound})",
            keys.len()
        );
    }
}

#[test]
fn the_33_workload_keys_spread_within_fifteen_percent_of_ideal() {
    let keys = workload_keys();
    let workers: Vec<WorkerId> = vec![0, 1, 2];
    let ring = Ring::build(&workers);
    let mut counts = vec![0usize; workers.len()];
    for key in &keys {
        let owner = ring.route(key).expect("non-empty ring places every key");
        counts[owner as usize] += 1;
    }
    let ideal = keys.len() as f64 / workers.len() as f64;
    let tolerance = 0.15 * keys.len() as f64;
    for (worker, &count) in counts.iter().enumerate() {
        let skew = (count as f64 - ideal).abs();
        assert!(
            skew <= tolerance,
            "worker {worker} owns {count} of {} keys (ideal {ideal:.1}, tolerance {tolerance:.1})",
            keys.len()
        );
    }
}
