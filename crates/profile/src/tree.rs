//! Canonical per-load-site producer trees.
//!
//! Each dynamic instance of a load yields an instance tree extracted from
//! the provenance DAG. Instances are merged into one canonical tree per
//! static load: identical subtrees are kept, differing subtrees are pruned
//! to checkpointable operands, and per-operand liveness flags accumulate
//! (`always_live` holds only if the operand's register still held the
//! operand value at *every* dynamic instance of the load).

use std::rc::Rc;

use amnesiac_isa::{Instruction, Reg};

use crate::provenance::{NodeKind, ValueNode};

/// Maximum height of extracted trees. The compiler's own height cap is
/// lower; this bounds extraction work.
pub const EXTRACT_DEPTH_CAP: u32 = 48;

/// One source operand of a [`ProvNode`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProvOperand {
    /// Architectural register the parent instruction reads.
    pub reg: Reg,
    /// `true` while the register has held the operand value at the load,
    /// for every observed instance — the paper's live-register leaf inputs
    /// (§2.2), which need no `Hist` buffering.
    pub always_live: bool,
    /// Producer subtree, when the operand is recomputable and its shape is
    /// stable across instances.
    pub child: Option<Box<ProvNode>>,
    /// `true` when `child` is `None` only because the provenance tracker's
    /// depth cap dropped the subtree for this operand (an artifact), rather
    /// than the producer being genuinely absent or divergent. Unknown
    /// operands do not veto a known canonical subtree during merging — the
    /// compiler's validation replay remains the correctness backstop.
    pub unknown: bool,
    /// `true` while, at every observed load instance, the parent
    /// instruction's *most recent* dynamic execution used exactly this
    /// operand value — i.e. a `REC` checkpoint (which always holds the
    /// latest execution's operands, §3.1.2) would deliver the right value.
    /// Operands that are neither live nor checkpoint-fresh cannot be `Hist`
    /// leaves; the compiler must expand their producer into the slice.
    pub checkpoint_fresh: bool,
}

/// A node of a canonical producer tree (the raw material of an RSlice).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvNode {
    /// Static pc of the producer in the main code.
    pub pc: usize,
    /// The producer instruction (always a compute instruction; loads are
    /// seen through during extraction).
    pub inst: Instruction,
    /// Source operands, aligned with [`Instruction::srcs`].
    pub operands: [Option<ProvOperand>; 3],
}

impl ProvNode {
    /// Extracts an instance tree from the provenance DAG.
    ///
    /// `regs` is the architectural register file at the load (the
    /// anticipated recomputation point), used for liveness flags.
    /// `last_exec` is the dense per-pc table of each compute instruction's
    /// most recent operand values (`None` where the pc never executed).
    ///
    /// Returns `None` if `root` has no compute producer (e.g. a pure copy
    /// of a read-only input).
    pub fn extract(
        root: &Rc<ValueNode>,
        regs: &[u64],
        last_exec: &[Option<[u64; 3]>],
    ) -> Option<ProvNode> {
        let compute = root.resolve_compute()?;
        Some(Self::extract_compute(&compute, regs, last_exec, 0))
    }

    fn extract_compute(
        node: &Rc<ValueNode>,
        regs: &[u64],
        last_exec: &[Option<[u64; 3]>],
        depth: u32,
    ) -> ProvNode {
        debug_assert_eq!(node.kind, NodeKind::Compute);
        let regs_of = node.inst.srcs();
        let mut operands: [Option<ProvOperand>; 3] = [None, None, None];
        for j in 0..3 {
            let Some(reg) = regs_of[j] else { continue };
            let (child, unknown) = if node.truncated || depth + 1 >= EXTRACT_DEPTH_CAP {
                (None, true)
            } else {
                let child = node.srcs[j]
                    .as_ref()
                    .and_then(|n| n.resolve_compute())
                    .map(|n| Box::new(Self::extract_compute(&n, regs, last_exec, depth + 1)));
                (child, false)
            };
            let fresh = last_exec
                .get(node.pc)
                .copied()
                .flatten()
                .is_some_and(|vals| vals[j] == node.src_values[j]);
            operands[j] = Some(ProvOperand {
                reg,
                always_live: regs[reg.index()] == node.src_values[j],
                child,
                unknown,
                checkpoint_fresh: fresh,
            });
        }
        ProvNode {
            pc: node.pc,
            inst: node.inst.clone(),
            operands,
        }
    }

    /// Merges another instance into this canonical tree.
    ///
    /// Returns `false` when the *root* producers differ — the site cannot
    /// be recomputed with a single embedded slice and must be marked
    /// unstable. Differences below the root only prune the affected
    /// operand's subtree.
    pub fn merge(&mut self, other: &ProvNode) -> bool {
        if self.pc != other.pc || self.inst != other.inst {
            return false;
        }
        for j in 0..3 {
            match (&mut self.operands[j], &other.operands[j]) {
                (Some(mine), Some(theirs)) => {
                    debug_assert_eq!(mine.reg, theirs.reg, "same static instruction");
                    mine.always_live &= theirs.always_live;
                    mine.checkpoint_fresh &= theirs.checkpoint_fresh;
                    let keep_child = match (&mut mine.child, &theirs.child) {
                        (Some(a), Some(b)) => a.merge(b),
                        // the instance didn't record the subtree: keep the
                        // canonical one (validated later)
                        (Some(_), None) if theirs.unknown => true,
                        (Some(_), None) => false,
                        // the canonical side was a truncation artifact:
                        // adopt the instance's subtree (liveness/freshness
                        // flags re-accumulate from here; the validation
                        // replay remains the correctness backstop)
                        (None, Some(b)) if mine.unknown => {
                            mine.child = Some(b.clone());
                            true
                        }
                        (None, _) => true, // semantically absent: stays pruned
                    };
                    if !keep_child {
                        mine.child = None;
                    }
                    // a semantic absence in either instance is sticky
                    if !theirs.unknown && theirs.child.is_none() {
                        mine.unknown = false;
                    }
                }
                (None, None) => {}
                _ => unreachable!("operand shape is fixed by the static instruction"),
            }
        }
        true
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self
            .operands
            .iter()
            .flatten()
            .filter_map(|o| o.child.as_ref())
            .map(|c| c.size())
            .sum::<usize>()
    }

    /// Height of the tree (a lone root has height 0), the paper's `h`.
    pub fn height(&self) -> u32 {
        self.operands
            .iter()
            .flatten()
            .filter_map(|o| o.child.as_ref())
            .map(|c| 1 + c.height())
            .max()
            .unwrap_or(0)
    }

    /// Visits nodes in post-order (children before parents) — the order in
    /// which a slice body must execute (data flows leaves → root, Fig. 1).
    pub fn post_order<'a>(&'a self, visit: &mut impl FnMut(&'a ProvNode)) {
        for operand in self.operands.iter().flatten() {
            if let Some(child) = &operand.child {
                child.post_order(visit);
            }
        }
        visit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::AluOp;

    fn leaf(pc: usize, reg: u8, live: bool) -> ProvNode {
        ProvNode {
            pc,
            inst: Instruction::Alui {
                op: AluOp::Add,
                dst: Reg(9),
                src: Reg(reg),
                imm: 1,
            },
            operands: [
                Some(ProvOperand {
                    reg: Reg(reg),
                    always_live: live,
                    child: None,
                    unknown: false,
                    checkpoint_fresh: true,
                }),
                None,
                None,
            ],
        }
    }

    fn parent(pc: usize, a: ProvNode, b: ProvNode) -> ProvNode {
        ProvNode {
            pc,
            inst: Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(9),
                lhs: Reg(1),
                rhs: Reg(2),
            },
            operands: [
                Some(ProvOperand {
                    reg: Reg(1),
                    always_live: true,
                    child: Some(Box::new(a)),
                    unknown: false,
                    checkpoint_fresh: true,
                }),
                Some(ProvOperand {
                    reg: Reg(2),
                    always_live: true,
                    child: Some(Box::new(b)),
                    unknown: false,
                    checkpoint_fresh: true,
                }),
                None,
            ],
        }
    }

    #[test]
    fn size_and_height() {
        let t = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        assert_eq!(t.size(), 3);
        assert_eq!(t.height(), 1);
        assert_eq!(leaf(1, 3, true).height(), 0);
    }

    #[test]
    fn merge_identical_keeps_shape() {
        let mut a = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let b = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        assert!(a.merge(&b));
        assert_eq!(a.size(), 3);
    }

    #[test]
    fn merge_root_mismatch_fails() {
        let mut a = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let b = parent(11, leaf(1, 3, true), leaf(2, 4, true));
        assert!(!a.merge(&b));
    }

    #[test]
    fn merge_prunes_differing_subtrees() {
        let mut a = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let b = parent(10, leaf(7, 3, true), leaf(2, 4, true)); // left child differs
        assert!(a.merge(&b));
        assert!(
            a.operands[0].as_ref().unwrap().child.is_none(),
            "left pruned"
        );
        assert!(
            a.operands[1].as_ref().unwrap().child.is_some(),
            "right kept"
        );
        assert_eq!(a.size(), 2);
    }

    #[test]
    fn merge_accumulates_liveness_conjunctively() {
        let mut a = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let b = parent(10, leaf(1, 3, false), leaf(2, 4, true));
        assert!(a.merge(&b));
        let left_leaf = a.operands[0].as_ref().unwrap().child.as_ref().unwrap();
        assert!(!left_leaf.operands[0].as_ref().unwrap().always_live);
        let right_leaf = a.operands[1].as_ref().unwrap().child.as_ref().unwrap();
        assert!(right_leaf.operands[0].as_ref().unwrap().always_live);
    }

    #[test]
    fn merge_with_missing_child_prunes() {
        let mut a = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let mut b = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        b.operands[1].as_mut().unwrap().child = None;
        assert!(a.merge(&b));
        assert!(a.operands[1].as_ref().unwrap().child.is_none());
    }

    #[test]
    fn post_order_visits_leaves_first() {
        let t = parent(10, leaf(1, 3, true), leaf(2, 4, true));
        let mut pcs = Vec::new();
        t.post_order(&mut |n| pcs.push(n.pc));
        assert_eq!(pcs, vec![1, 2, 10]);
    }
}
