#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-telemetry
//!
//! Machine-readable observability for the amnesiac stack, with zero
//! external dependencies: a tiny JSON value model ([`Json`]), a
//! deterministic pretty-printing writer, a strict parser (for round-trip
//! tests and baseline comparison), the [`ToJson`] conversion trait that
//! every stats-bearing crate implements, the [`JsonSink`] artifact writer
//! that every `--json <dir>` flag funnels through, and wall-clock stage
//! timing ([`StageTimings`], [`Stopwatch`]).
//!
//! The JSON schema conventions used across the workspace:
//!
//! * objects preserve insertion order (deterministic output, stable diffs);
//! * all energy values are nanojoules (`*_nj`), times are cycles or
//!   milliseconds (`*_ms`), gains are percentages (`*_pct`);
//! * non-finite floats serialize as `null` (JSON has no NaN/inf) — readers
//!   must treat `null` metrics as "not measurable".

mod json;
mod sink;
mod timing;

pub use json::{parse, Json, ParseError};
pub use sink::{write_json_file, JsonSink};
pub use timing::{StageTimings, Stopwatch};

/// Conversion into the telemetry JSON value model.
///
/// Implemented by every stats-bearing struct in the workspace
/// (`AmnesicStats`, `RunResult`, `HierarchyStats`, `CompileReport`, …) so
/// experiment drivers can emit machine-readable twins of their ASCII
/// tables.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
