//! Fig. 6: histograms of instruction count per recomputed RSlice under the
//! Compiler policy.

use crate::pipeline::{EvalSuite, PolicyOutcome};
use crate::report::{bucketize, histogram};

/// Renders one histogram per benchmark, plus the aggregate statistics the
/// paper quotes (§5.4: 78.32% of RSlices under 10 instructions, 0.09%
/// above 50).
pub fn render(suite: &EvalSuite) -> String {
    let mut out = String::new();
    let mut all_lengths: Vec<usize> = Vec::new();
    for bench in &suite.benches {
        let lengths: Vec<usize> = bench
            .prob_binary
            .slices
            .iter()
            .map(|s| s.compute_len())
            .collect();
        let stats = &bench.run(PolicyOutcome::Compiler).stats;
        let hist = stats.recomputed_length_histogram(&lengths);
        let values: Vec<(f64, u64)> = hist
            .iter()
            .map(|(&len, &count)| (len as f64, count as u64))
            .collect();
        for (&len, &count) in &hist {
            for _ in 0..count {
                all_lengths.push(len);
            }
        }
        let max = values
            .iter()
            .map(|&(l, _)| l)
            .fold(10.0f64, f64::max)
            .max(10.0);
        let bin = (max / 8.0).ceil().max(1.0);
        let bins = bucketize(&values, bin, bin * 8.0);
        out.push_str(&histogram(
            &format!(
                "Fig. 6 ({}): instructions per recomputed RSlice",
                bench.name
            ),
            &bins,
        ));
        out.push('\n');
    }
    if !all_lengths.is_empty() {
        let short = all_lengths.iter().filter(|&&l| l < 10).count();
        let long = all_lengths.iter().filter(|&&l| l > 50).count();
        out.push_str(&format!(
            "Aggregate: {:.2}% of recomputed RSlices are under 10 instructions \
             (paper: 78.32%), {:.2}% above 50 (paper: 0.09%)\n",
            100.0 * short as f64 / all_lengths.len() as f64,
            100.0 * long as f64 / all_lengths.len() as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BenchEval;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn histogram_reflects_slice_table() {
        let suite = EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        let text = render(&suite);
        assert!(text.contains("Fig. 6 (is)"));
    }
}
