//! Regenerates Figs. 3-5 and Tables 4-5 and Figs. 6-8 from one suite
//! computation. Pass `--test-scale` for a quick run and `--json <dir>` for
//! the machine-readable twins.
use amnesiac_experiments::{ablations, export, fig3, fig6, fig7, fig8, table4, table5, EvalSuite};
use amnesiac_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    };
    let suite = EvalSuite::compute(scale);
    println!("{}", fig3::render(&suite));
    println!("{}", fig3::render_energy(&suite));
    println!("{}", fig3::render_time(&suite));
    println!("{}", table4::render(&suite));
    println!("{}", table5::render(&suite));
    println!("{}", fig6::render(&suite));
    println!("{}", fig7::render(&suite));
    println!("{}", fig8::render(&suite));
    println!("{}", ablations::store_elision(&suite));
    if let Some(dir) = export::json_dir_from_args(&args) {
        export::write_suite_artifacts(&dir, &suite).expect("results dir is writable");
        println!("machine-readable results written to {}", dir.display());
    }
}
