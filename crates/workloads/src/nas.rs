//! NAS Parallel Benchmark stand-ins: `cg` and `is`.

use amnesiac_isa::{AluOp, BranchCond, CvtKind, FpOp, Program, ProgramBuilder, Reg};

use crate::util::{loop_footer, loop_header, random_indices};
use crate::Scale;

/// Number of struct-of-arrays lanes in the CG stand-in (the band width of
/// the sparse operator).
const CG_LANES: u8 = 6;

/// NAS `CG` stand-in: conjugate-gradient-style sparse operator.
///
/// The vectors are laid out struct-of-arrays (as NAS CG lays out its
/// matrix): phase 1 fills `x_d[i] = float(i)·a_d + b_d` per lane, phase 2
/// applies the operator `y[i] = Σ_d w_d · x_d[i]`, phase 3 folds
/// `Σ y[i]²`. The vectors exceed L2, so the streaming reloads show the
/// paper's 87/0/12 profile, and the `y` reloads of phase 3 carry *long*
/// slices — the whole per-element operator chain, seen through the
/// intermediate `x_d` loads (Fig. 6c shows cg slices up to ~60).
///
/// All slice leaves are pure functions of the element index (kept in the
/// same register by every phase) and of lane constants, some of which are
/// clobbered after phase 2 to exercise `Hist`.
pub fn cg(scale: Scale) -> Program {
    let n: u64 = match scale {
        Scale::Test => 96,
        Scale::Paper => 16_000,
    };
    let mut b = ProgramBuilder::new("cg");
    let lanes: Vec<u64> = (0..CG_LANES).map(|_| b.alloc_zeroed(n)).collect();
    let offsets: Vec<f64> = (0..CG_LANES).map(|d| 1.0 - 0.125 * d as f64).collect();
    let off_base = b.alloc_f64(&offsets);
    b.mark_read_only(off_base, CG_LANES as u64);
    let y = b.alloc_zeroed(n);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);

    let r_i = Reg(1); // element index, shared by all phases
    let r_lim = Reg(2);
    let r_addr = Reg(3);
    let r_if = Reg(4);
    let r_acc = Reg(5);
    let r_y = Reg(6);
    // lane parameters: a_d in r10.., b_d in r16.. (the matrix diagonal
    // offsets, loaded from the read-only problem input), w_d in r22..
    b.li(r_addr, off_base);
    for d in 0..CG_LANES {
        b.lfi(Reg(10 + d), 0.5 + 0.25 * d as f64);
        b.load(Reg(16 + d), r_addr, d as i64);
        b.lfi(Reg(22 + d), 0.0625 * (d + 1) as f64);
    }
    b.li(r_y, y);
    let r_lane0 = Reg(7);
    b.li(r_lane0, lanes[0]);

    let (t1, t2) = (Reg(40), Reg(41));

    // phase 1: fill the lanes
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.cvt(CvtKind::I2F, r_if, r_i);
    for (d, &lane) in lanes.iter().enumerate() {
        b.fpu(FpOp::Mul, t1, r_if, Reg(10 + d as u8));
        b.fpu(FpOp::Add, t1, t1, Reg(16 + d as u8));
        b.li(r_addr, lane);
        b.alu(AluOp::Add, r_addr, r_addr, r_i);
        b.store(t1, r_addr, 0);
    }
    loop_footer(&mut b, r_i, top, done);

    // phase 2: y = Σ_d w_d · x_d (the x_d reloads carry short slices)
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.lfi(r_acc, 0.0);
    for (d, &lane) in lanes.iter().enumerate() {
        b.li(r_addr, lane);
        b.alu(AluOp::Add, r_addr, r_addr, r_i);
        b.load(t1, r_addr, 0);
        b.fma(r_acc, t1, Reg(22 + d as u8), r_acc);
    }
    b.alu(AluOp::Add, r_addr, r_y, r_i);
    b.store(r_acc, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);

    // clobber the b_d offsets: they become Hist-buffered leaves
    for d in 0..CG_LANES {
        b.lfi(Reg(16 + d), 0.0);
    }

    // phase 3: Σ y² (the y reloads carry the full operator slice)
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_y, r_i);
    b.load(t2, r_addr, 0);
    b.fma(r_acc, t2, t2, r_acc);
    loop_footer(&mut b, r_i, top, done);

    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("cg builds")
}

/// Number of buckets in the IS stand-in.
const IS_BUCKETS: u64 = 32;

/// NAS `IS` stand-in: integer bucket sort of a large key space.
///
/// Phase 1 counts bucket occupancy over a read-only key array; phase 2
/// writes the sorted sequence bucket-major-interleaved (`out[b + B·r] =
/// b·σ + κ`); phase 3 re-walks the same nested structure verifying a
/// checksum. The interleaved layout defeats spatial locality, so the
/// reloads reach L2 and memory heavily — the driver of IS's standout EDP
/// gain in the paper (87%, Fig. 3), with the near-trivial slices of
/// Fig. 6d and, uniquely among the benchmarks, almost no
/// non-recomputable inputs (Fig. 7): the slice leaves are the live bucket
/// register and constants.
pub fn is(scale: Scale) -> Program {
    is_with_input(scale, 23)
}

/// [`is`] with a custom RNG seed for its key array — used by the
/// cross-input generalization tests.
pub fn is_with_input(scale: Scale, seed: u64) -> Program {
    let n_keys: u64 = match scale {
        Scale::Test => 256,
        Scale::Paper => 144_000,
    };
    let mut b = ProgramBuilder::new("is");
    let keys = b.alloc_data(&random_indices(seed, n_keys as usize, IS_BUCKETS));
    b.mark_read_only(keys, n_keys);
    let counts = b.alloc_zeroed(IS_BUCKETS);
    let outbuf = b.alloc_zeroed(n_keys + IS_BUCKETS);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);

    let r_keys = Reg(1);
    let r_counts = Reg(2);
    let r_out = Reg(3);
    let r_k = Reg(4);
    let r_lim = Reg(5);
    let r_addr = Reg(6);
    let r_b = Reg(7); // bucket index, shared by phases 2 and 3
    let r_r = Reg(8); // rank within bucket
    let r_run = Reg(9);
    let r_sigma = Reg(10);
    let r_kappa = Reg(11);
    let (t1, t2) = (Reg(40), Reg(41));

    b.li(r_keys, keys);
    b.li(r_counts, counts);
    b.li(r_out, outbuf);
    b.li(r_sigma, 1103);
    b.li(r_kappa, 17);

    // phase 1: histogram
    let (top, done) = loop_header(&mut b, r_k, r_lim, n_keys);
    b.alu(AluOp::Add, r_addr, r_keys, r_k);
    b.load(t1, r_addr, 0);
    b.alu(AluOp::Add, r_addr, r_counts, t1);
    b.load(t2, r_addr, 0);
    b.alui(AluOp::Add, t2, t2, 1);
    b.store(t2, r_addr, 0);
    loop_footer(&mut b, r_k, top, done);

    // phase 2: emit bucket-major-interleaved sorted values
    let r_blim = Reg(12);
    let (btop, bdone) = loop_header(&mut b, r_b, r_blim, IS_BUCKETS);
    b.alu(AluOp::Add, r_addr, r_counts, r_b);
    b.load(r_run, r_addr, 0);
    {
        b.li(r_r, 0);
        let rtop = b.label();
        let rdone = b.label();
        b.bind(rtop).expect("fresh");
        b.branch(BranchCond::Geu, r_r, r_run, rdone);
        b.alu(AluOp::Mul, t1, r_b, r_sigma); // the recomputable value
        b.alu(AluOp::Add, t1, t1, r_kappa);
        b.alui(AluOp::Mul, t2, r_r, IS_BUCKETS); // b + B·r addressing
        b.alu(AluOp::Add, t2, t2, r_b);
        b.alu(AluOp::Add, r_addr, r_out, t2);
        b.store(t1, r_addr, 0);
        b.alui(AluOp::Add, r_r, r_r, 1);
        b.jump(rtop);
        b.bind(rdone).expect("fresh");
    }
    loop_footer(&mut b, r_b, btop, bdone);

    // phase 3: verify in the same nested order (r_b live at the reloads)
    let r_acc = Reg(13);
    b.li(r_acc, 0);
    let (btop, bdone) = loop_header(&mut b, r_b, r_blim, IS_BUCKETS);
    b.alu(AluOp::Add, r_addr, r_counts, r_b);
    b.load(r_run, r_addr, 0);
    {
        b.li(r_r, 0);
        let rtop = b.label();
        let rdone = b.label();
        b.bind(rtop).expect("fresh");
        b.branch(BranchCond::Geu, r_r, r_run, rdone);
        b.alui(AluOp::Mul, t2, r_r, IS_BUCKETS);
        b.alu(AluOp::Add, t2, t2, r_b);
        b.alu(AluOp::Add, r_addr, r_out, t2);
        b.load(t1, r_addr, 0); // the swappable sorted-value load
        b.alu(AluOp::Add, r_acc, r_acc, t1);
        b.alui(AluOp::Add, r_r, r_r, 1);
        b.jump(rtop);
        b.bind(rdone).expect("fresh");
    }
    loop_footer(&mut b, r_b, btop, bdone);

    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("is builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_sim::{ClassicCore, CoreConfig};

    #[test]
    fn cg_norm_matches_reference() {
        let p = cg(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let n = 96u64;
        let mut expected = 0.0f64;
        for i in 0..n {
            let fi = i as f64;
            let mut y = 0.0f64;
            for d in 0..CG_LANES {
                let x = fi * (0.5 + 0.25 * d as f64) + (1.0 - 0.125 * d as f64);
                y = x.mul_add(0.0625 * (d + 1) as f64, y);
            }
            expected = y.mul_add(y, expected);
        }
        let out_addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&out_addr]), expected);
    }

    #[test]
    fn is_checksum_counts_every_key() {
        let p = is(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let keys = random_indices(23, 256, IS_BUCKETS);
        let expected: u64 = keys
            .iter()
            .map(|&b| b.wrapping_mul(1103).wrapping_add(17))
            .fold(0u64, |a, x| a.wrapping_add(x));
        let out_addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(r.final_memory[&out_addr], expected);
    }
}
