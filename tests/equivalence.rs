//! Cross-crate integration tests: for every workload and every runtime
//! policy, amnesic execution must be bit-identical to classic execution —
//! the system's fundamental safety property.

use amnesiac::compiler::{compile, CompileOptions, SliceSetPolicy};
use amnesiac::core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac::energy::EnergyModel;
use amnesiac::profile::profile_program;
use amnesiac::sim::{ClassicCore, CoreConfig};
use amnesiac::workloads::{build_control, build_focal, Scale, CONTROL_NAMES, FOCAL_NAMES};

fn check_program(program: &amnesiac::isa::Program) {
    let config = CoreConfig::paper();
    let classic = ClassicCore::new(config.clone())
        .run(program)
        .expect("classic run succeeds");
    let (profile, _) = profile_program(program, &config).expect("profiling succeeds");

    for slice_set in [SliceSetPolicy::Probabilistic, SliceSetPolicy::Oracle] {
        let options = CompileOptions {
            slice_set,
            ..CompileOptions::default()
        };
        let (binary, _) = compile(program, &profile, &options).expect("compile succeeds");
        for policy in Policy::ALL_EXTENDED {
            let result = AmnesicCore::new(AmnesicConfig::paper(policy))
                .run(&binary)
                .unwrap_or_else(|e| {
                    panic!("{}: {policy} on {slice_set:?} failed: {e}", program.name)
                });
            assert_eq!(
                result.run.final_memory, classic.final_memory,
                "{}: {policy} on {slice_set:?} diverged from classic",
                program.name
            );
        }
    }
}

#[test]
fn every_focal_benchmark_is_policy_equivalent() {
    for name in FOCAL_NAMES {
        check_program(&build_focal(name, Scale::Test).program);
    }
}

#[test]
fn every_control_benchmark_is_policy_equivalent() {
    for name in CONTROL_NAMES {
        check_program(&build_control(name, Scale::Test).program);
    }
}

#[test]
fn amnesic_core_runs_unannotated_binaries_exactly_like_classic() {
    for name in FOCAL_NAMES {
        let program = build_focal(name, Scale::Test).program;
        let config = CoreConfig::paper();
        let classic = ClassicCore::new(config.clone()).run(&program).unwrap();
        let amnesic = AmnesicCore::new(AmnesicConfig::paper(Policy::Compiler))
            .run(&program)
            .unwrap();
        assert_eq!(amnesic.run.final_memory, classic.final_memory);
        assert_eq!(amnesic.run.instructions, classic.instructions, "{name}");
        assert!(
            (amnesic.run.account.total_nj() - classic.account.total_nj()).abs() < 1e-6,
            "{name}: energy must match exactly without annotations"
        );
    }
}

#[test]
fn compiled_binaries_respect_the_energy_budget_rule() {
    use amnesiac::compiler::SiteOutcome;
    for name in FOCAL_NAMES {
        let program = build_focal(name, Scale::Test).program;
        let config = CoreConfig::paper();
        let (profile, _) = profile_program(&program, &config).unwrap();
        let (binary, report) = compile(&program, &profile, &CompileOptions::default()).unwrap();
        for d in &report.decisions {
            if let SiteOutcome::Selected {
                est_recompute_nj,
                est_load_nj,
                ..
            } = d.outcome
            {
                // the probabilistic budget is the whole-program E_ld
                let _ = est_load_nj;
                assert!(est_recompute_nj.is_finite());
            }
        }
        // every embedded slice carries consistent §3.4 metadata
        let bounds = amnesiac::compiler::StorageBounds::of(&binary);
        for meta in &binary.slices {
            assert!(meta.compute_len() <= bounds.max_insts_per_slice);
            assert!(meta.compute_len() <= 64, "{name}: compiler inst cap");
            assert!(meta.height <= 48, "{name}: compiler height cap");
        }
    }
}

#[test]
fn scaled_energy_models_preserve_equivalence() {
    // the break-even sweep recompiles under scaled EPIs; correctness must
    // hold at every point of the sweep
    let program = build_focal("ca", Scale::Test).program;
    let config = CoreConfig::paper();
    let classic = ClassicCore::new(config.clone()).run(&program).unwrap();
    let (profile, _) = profile_program(&program, &config).unwrap();
    for factor in [0.25, 1.0, 8.0, 64.0] {
        let energy = EnergyModel::paper().with_r_factor(factor);
        let options = CompileOptions {
            energy: energy.clone(),
            ..CompileOptions::default()
        };
        let (binary, _) = compile(&program, &profile, &options).unwrap();
        let result = AmnesicCore::new(AmnesicConfig {
            core: CoreConfig::with_energy(energy),
            ..AmnesicConfig::paper(Policy::Compiler)
        })
        .run(&binary)
        .unwrap();
        assert_eq!(result.run.final_memory, classic.final_memory, "R×{factor}");
    }
}
