//! Static replay-equivalence: proves that a slice's recomputation equals
//! the value its `RCMP` loads, on *every* input — not just the profiled
//! one — so the pipeline can skip dynamic validation rounds.
//!
//! The proof obligation mirrors the replay oracle exactly. A slice fires at
//! its `RCMP`, recomputes a value from `SFile`/`LiveReg`/`Hist` operands,
//! and must reproduce the architecturally loaded word. We build symbolic
//! expressions for both sides over the shared [`ExprArena`]:
//!
//! 1. the *slice expression* from the operand plans at the `RCMP` state
//!    (`LiveReg` → register expression at the `RCMP`, `Hist` → the unique
//!    constant or single-valued expression all `REC` sites record, with an
//!    order proof that some site executes first);
//! 2. the *stored expression* of every store whose address interval
//!    intersects the load's.
//!
//! Unification then solves `store_addr(store time) = load_addr(rcmp time)`
//! for the store-side tokens. Every descent rule is an *exact inverse*
//! (constant cancellation through injective operators, modular inverses for
//! odd multipliers), so a successful unification means the binding is
//! forced: if the store wrote the loaded address, its tokens took exactly
//! the bound values — and the stored value, under that binding, must equal
//! the slice expression id-for-id. With every aliasing store agreeing, the
//! last writer (whichever it was) wrote the slice's value; a coverage
//! argument (ground store, stride-1 affine loop, or constant initial image)
//! shows the address was written — or holds the same constant — before the
//! `RCMP` fires.

use std::collections::{BTreeSet, HashMap};

use amnesiac_cfg::Cfg;
use amnesiac_isa::{AluOp, BranchCond, DecodedInst, DecodedOp, OperandSource, Program, SliceMeta};

use crate::domain::Interval;
use crate::footprint::{initial_value_interval, Footprint};
use crate::symbolic::{ExprArena, ExprId, Node, SymbolicAnalysis};
use crate::zerotrip::ZeroTrip;

/// Which coverage argument closed a proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// A singleton-address store to the loaded address executes first.
    GroundStore,
    /// A stride-1 affine loop writes the whole loaded interval first.
    AffineLoop,
    /// No store can intervene (or all agree) and the initial image over
    /// the loaded range is one constant equal to the recomputation.
    InitialValue,
}

/// Outcome of the static equivalence check for one slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceVerdict {
    /// The slice provably reproduces the loaded value at every firing, on
    /// every input.
    Proven(ProofKind),
    /// No proof found; the reason string feeds the lint report. Dynamic
    /// replay remains the oracle for these.
    Unknown(String),
}

impl SliceVerdict {
    /// `true` for [`SliceVerdict::Proven`].
    pub fn is_proven(&self) -> bool {
        matches!(self, SliceVerdict::Proven(_))
    }

    /// The no-proof reason, if any.
    pub fn reason(&self) -> Option<&str> {
        match self {
            SliceVerdict::Proven(_) => None,
            SliceVerdict::Unknown(r) => Some(r),
        }
    }
}

/// One reachable `REC` site with the symbolic expressions of its gathered
/// sources at the site.
#[derive(Debug, Clone)]
struct RecSite {
    pc: usize,
    srcs: [ExprId; 3],
}

/// Blocks that may execute more than once: the union of every natural-loop
/// body. `None` when the CFG is irreducible (a retreating edge in RPO that
/// is not a back edge) — natural loops then under-approximate the cyclic
/// region, so every block must conservatively count as re-executable.
fn multi_exec_blocks(cfg: &Cfg) -> Option<BTreeSet<usize>> {
    let mut order = vec![usize::MAX; cfg.len()];
    for (i, &b) in cfg.rpo().iter().enumerate() {
        order[b] = i;
    }
    for b in 0..cfg.len() {
        if order[b] == usize::MAX {
            continue;
        }
        for &s in &cfg.blocks[b].succs {
            if order[s] != usize::MAX && order[s] <= order[b] && !cfg.is_back_edge(b, s) {
                return None;
            }
        }
    }
    let mut multi = BTreeSet::new();
    for h in cfg.loop_heads() {
        multi.extend(crate::zerotrip::natural_loop(cfg, h));
    }
    Some(multi)
}

/// Multiplicative inverse of an odd `c` modulo 2^64 (Newton iteration).
fn mul_inverse(c: u64) -> u64 {
    debug_assert!(c & 1 == 1);
    let mut inv = c;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(c.wrapping_mul(inv)));
    }
    inv
}

/// `true` if `op` with one operand fixed to a constant is injective in the
/// other (so equal-constant cancellation is an exact inverse).
fn cancels(op: AluOp, c: u64) -> bool {
    match op {
        AluOp::Add | AluOp::Sub | AluOp::Xor => true,
        AluOp::Mul => c & 1 == 1,
        _ => false,
    }
}

/// Unification of a store-side expression (tokens = variables) against a
/// load-side expression (rigid). Every rule is invertible, so a success
/// means the binding is *forced* by address equality.
struct Unify<'a> {
    arena: &'a mut ExprArena,
    sigma: HashMap<ExprId, ExprId>,
}

impl Unify<'_> {
    fn bind(&mut self, tok: ExprId, l: ExprId) -> bool {
        match self.sigma.get(&tok) {
            Some(&b) => b == l,
            None => {
                self.sigma.insert(tok, l);
                true
            }
        }
    }

    fn go(&mut self, s: ExprId, l: ExprId) -> bool {
        match self.arena.node(s) {
            Node::Const(a) => matches!(self.arena.node(l), Node::Const(b) if a == b),
            Node::Join { .. } | Node::Load { .. } => self.bind(s, l),
            Node::Pure { kind, args } => match self.arena.node(l) {
                Node::Pure {
                    kind: lk,
                    args: largs,
                } if lk == kind => (0..3).all(|j| self.go(args[j], largs[j])),
                _ => false,
            },
            Node::Alu { op, lhs, rhs } => {
                // equal-constant cancellation through an injective operator
                if let Node::Alu {
                    op: lop,
                    lhs: llhs,
                    rhs: lrhs,
                } = self.arena.node(l)
                {
                    if lop == op {
                        if let (Node::Const(a), Node::Const(b)) =
                            (self.arena.node(lhs), self.arena.node(llhs))
                        {
                            if a == b && cancels(op, a) {
                                let save = self.sigma.clone();
                                if self.go(rhs, lrhs) {
                                    return true;
                                }
                                self.sigma = save;
                            }
                        }
                        if let (Node::Const(a), Node::Const(b)) =
                            (self.arena.node(rhs), self.arena.node(lrhs))
                        {
                            if a == b && cancels(op, a) {
                                let save = self.sigma.clone();
                                if self.go(lhs, llhs) {
                                    return true;
                                }
                                self.sigma = save;
                            }
                        }
                    }
                }
                // inverse peeling of a constant operand
                match (op, self.arena.node(lhs), self.arena.node(rhs)) {
                    (AluOp::Add, Node::Const(c), _) | (AluOp::Add, _, Node::Const(c)) => {
                        let x = if matches!(self.arena.node(lhs), Node::Const(_)) {
                            rhs
                        } else {
                            lhs
                        };
                        let ce = self.arena.constant(c);
                        let t = self.arena.alu(AluOp::Sub, l, ce);
                        self.go(x, t)
                    }
                    (AluOp::Sub, _, Node::Const(c)) => {
                        let ce = self.arena.constant(c);
                        let t = self.arena.alu(AluOp::Add, l, ce);
                        self.go(lhs, t)
                    }
                    (AluOp::Sub, Node::Const(c), _) => {
                        let ce = self.arena.constant(c);
                        let t = self.arena.alu(AluOp::Sub, ce, l);
                        self.go(rhs, t)
                    }
                    (AluOp::Mul, Node::Const(c), _) | (AluOp::Mul, _, Node::Const(c))
                        if c & 1 == 1 =>
                    {
                        let x = if matches!(self.arena.node(lhs), Node::Const(_)) {
                            rhs
                        } else {
                            lhs
                        };
                        let inv = self.arena.constant(mul_inverse(c));
                        let t = self.arena.alu(AluOp::Mul, inv, l);
                        self.go(x, t)
                    }
                    (AluOp::Xor, Node::Const(c), _) | (AluOp::Xor, _, Node::Const(c)) => {
                        let x = if matches!(self.arena.node(lhs), Node::Const(_)) {
                            rhs
                        } else {
                            lhs
                        };
                        let ce = self.arena.constant(c);
                        let t = self.arena.alu(AluOp::Xor, l, ce);
                        self.go(x, t)
                    }
                    _ => false,
                }
            }
        }
    }
}

/// The static equivalence prover, borrowing the sibling analyses.
pub struct Equivalence<'a> {
    decoded: &'a [DecodedInst],
    cfg: &'a Cfg,
    sym: &'a mut SymbolicAnalysis,
    zt: &'a ZeroTrip,
    fp: &'a Footprint,
    rec: HashMap<u16, Vec<RecSite>>,
    /// Blocks that may run more than once (`None` = irreducible CFG, all
    /// blocks conservatively multi-execution).
    multi: Option<BTreeSet<usize>>,
}

impl<'a> Equivalence<'a> {
    /// Builds the prover, indexing every reachable `REC` site.
    pub fn new(
        decoded: &'a [DecodedInst],
        cfg: &'a Cfg,
        sym: &'a mut SymbolicAnalysis,
        zt: &'a ZeroTrip,
        fp: &'a Footprint,
        code_len: usize,
    ) -> Equivalence<'a> {
        let mut rec: HashMap<u16, Vec<RecSite>> = HashMap::new();
        for (pc, d) in decoded.iter().enumerate().take(code_len) {
            let DecodedOp::Rec { key } = d.op else {
                continue;
            };
            if !cfg.is_reachable_pc(pc) {
                continue;
            }
            let Some(state) = sym.state_at(decoded, cfg, pc) else {
                continue;
            };
            let zero = sym.arena.constant(0);
            let mut srcs = [zero; 3];
            for (j, s) in d.srcs.iter().enumerate() {
                if let Some(r) = s {
                    srcs[j] = state[r.index()];
                }
            }
            rec.entry(key).or_default().push(RecSite { pc, srcs });
        }
        let multi = multi_exec_blocks(cfg);
        Equivalence {
            decoded,
            cfg,
            sym,
            zt,
            fp,
            rec,
            multi,
        }
    }

    /// `true` when the token (a `Join` or `Load` node) is defined in a
    /// block that executes at most once, so it denotes one fixed runtime
    /// value for the whole run. Any expression a state carries at a program
    /// point descends, merge by merge, from the token's defining site — so
    /// every point whose state mentions the token has provably executed it,
    /// and id-equal occurrences at different points denote the same value.
    fn single_valued_token(&self, t: ExprId) -> bool {
        let Some(multi) = &self.multi else {
            return false;
        };
        let block = match self.sym.arena.node(t) {
            Node::Join { block, .. } => Some(block as usize),
            Node::Load { pc } => self.cfg.block_of_pc(pc as usize),
            _ => None,
        };
        block.is_some_and(|b| !multi.contains(&b))
    }

    /// `true` when every token of `e` is single-valued (the expression
    /// denotes one fixed value for the run).
    fn single_valued(&self, e: ExprId) -> bool {
        self.sym
            .arena
            .tokens(e)
            .iter()
            .all(|&t| self.single_valued_token(t))
    }

    /// Hist keys used by `meta` that no reachable `REC` site ever records
    /// (the hist lookup can never succeed, so the slice always misses).
    pub fn missing_rec_keys(&self, meta: &SliceMeta) -> Vec<u16> {
        meta.hist_keys()
            .into_iter()
            .filter(|k| !self.rec.contains_key(k))
            .collect()
    }

    /// `true` if every path reaching `b_pc` executed `a_pc` first.
    fn executes_before(&self, a_pc: usize, b_pc: usize) -> bool {
        let (Some(ab), Some(bb)) = (self.cfg.block_of_pc(a_pc), self.cfg.block_of_pc(b_pc)) else {
            return false;
        };
        self.zt.must_pass(self.cfg, ab, bb) && (ab != bb || a_pc < b_pc)
    }

    /// Builds the slice's recomputation expression at the `RCMP` state.
    fn slice_expr(&mut self, meta: &SliceMeta) -> Result<ExprId, String> {
        let rcmp_state = self
            .sym
            .state_at(self.decoded, self.cfg, meta.rcmp_pc)
            .ok_or_else(|| "rcmp is unreachable".to_string())?;
        let n = meta.compute_len();
        if n == 0 {
            return Err("empty slice body".to_string());
        }
        let mut values: Vec<ExprId> = Vec::with_capacity(n);
        for k in 0..n {
            let d = self
                .decoded
                .get(meta.entry.wrapping_add(k))
                .ok_or_else(|| format!("body instruction {k} is outside the stream"))?;
            let plan = meta
                .plans
                .get(k)
                .ok_or_else(|| format!("no operand plan for body instruction {k}"))?;
            let mut vals = [self.sym.arena.constant(0); 3];
            for j in 0..3 {
                let Some(source) = plan.sources[j] else {
                    continue;
                };
                vals[j] = match source {
                    OperandSource::SFile { producer } => {
                        let p = producer as usize;
                        *values
                            .get(p)
                            .ok_or_else(|| format!("forward SFile reference {p}"))?
                    }
                    OperandSource::LiveReg => {
                        let r = d.srcs[j].ok_or_else(|| "planned operand missing".to_string())?;
                        rcmp_state[r.index()]
                    }
                    OperandSource::Hist { key } => self.hist_value(key, j, meta.rcmp_pc)?,
                };
            }
            values.push(compute_expr(&mut self.sym.arena, d, vals)?);
        }
        Ok(*values.last().expect("n > 0"))
    }

    /// The value a `Hist` operand is guaranteed to hold: all reachable
    /// `REC` sites for `key` record the same expression in source slot `j`,
    /// that expression is a constant or single-valued (each of its tokens
    /// executes at most once, so every site records the same runtime word),
    /// and at least one site provably executes before the `RCMP`.
    fn hist_value(&mut self, key: u16, j: usize, rcmp_pc: usize) -> Result<ExprId, String> {
        let sites = self
            .rec
            .get(&key)
            .ok_or_else(|| format!("no reachable REC site for hist key {key}"))?
            .clone();
        let mut value: Option<ExprId> = None;
        for s in &sites {
            let e = s.srcs[j];
            if value.is_some_and(|v| v != e) {
                return Err(format!("REC sites for key {key} disagree"));
            }
            value = Some(e);
        }
        let value = value.ok_or_else(|| format!("no REC site for key {key}"))?;
        if !self.single_valued(value) {
            return Err(format!(
                "REC at pc {} records a multi-valued expression for key {key}",
                sites[0].pc
            ));
        }
        if !sites.iter().any(|s| self.executes_before(s.pc, rcmp_pc)) {
            return Err(format!("no REC for key {key} provably precedes the rcmp"));
        }
        Ok(value)
    }

    /// The recomputed value, when it folds to a constant (used for the
    /// constant-foldable and provably-divergent diagnostics).
    pub fn slice_const(&mut self, meta: &SliceMeta) -> Option<u64> {
        match self.slice_expr(meta) {
            Ok(e) => match self.sym.arena.node(e) {
                Node::Const(c) => Some(c),
                _ => None,
            },
            Err(_) => None,
        }
    }

    /// Attempts the full static replay-equivalence proof for one slice.
    pub fn prove(&mut self, program: &Program, meta: &SliceMeta) -> SliceVerdict {
        let slice_e = match self.slice_expr(meta) {
            Ok(e) => e,
            Err(r) => return SliceVerdict::Unknown(r),
        };
        let Some(acc) = self.fp.at(meta.rcmp_pc) else {
            return SliceVerdict::Unknown("rcmp has no footprint record".to_string());
        };
        let addr_iv = acc.addr;
        if addr_iv == Interval::Bot {
            return SliceVerdict::Unknown("rcmp address is unbounded-bottom".to_string());
        }

        // every possibly-aliasing store must unify: address equality must
        // force a binding under which the stored value IS the slice value
        let stores: Vec<(usize, Interval)> = self
            .fp
            .aliasing_stores(addr_iv)
            .iter()
            .map(|a| (a.pc, a.addr))
            .collect();
        if stores.is_empty() {
            return match self.initial_const(addr_iv, program, slice_e) {
                true => SliceVerdict::Proven(ProofKind::InitialValue),
                false => SliceVerdict::Unknown(
                    "no aliasing store and the initial image is not one matching constant"
                        .to_string(),
                ),
            };
        }
        let load_addr = match self.rcmp_addr_expr(meta.rcmp_pc) {
            Ok(e) => e,
            Err(r) => return SliceVerdict::Unknown(r),
        };
        let mut unified: Vec<(usize, ExprId)> = Vec::new();
        for &(s_pc, _) in &stores {
            let (s_addr, s_value) = match self.store_exprs(s_pc) {
                Ok(p) => p,
                Err(r) => return SliceVerdict::Unknown(r),
            };
            let (unifies, sigma) = {
                let mut u = Unify {
                    arena: &mut self.sym.arena,
                    sigma: HashMap::new(),
                };
                let ok = u.go(s_addr, load_addr);
                (ok, u.sigma)
            };
            if !unifies {
                // fallback: when the store value is the slice expression
                // verbatim and single-valued, the store writes the right
                // word *wherever* it lands — address agreement is moot
                if s_value == slice_e && self.single_valued(s_value) {
                    unified.push((s_pc, s_addr));
                    continue;
                }
                return SliceVerdict::Unknown(format!(
                    "store at pc {s_pc} does not unify with the rcmp address"
                ));
            }
            // every token of the stored value must be forced by address
            // equality — except single-valued tokens, which denote the same
            // word at store time and rcmp time unbound
            for t in self.sym.arena.tokens(s_value) {
                if !sigma.contains_key(&t) && !self.single_valued_token(t) {
                    return SliceVerdict::Unknown(format!(
                        "store at pc {s_pc} has a value token the address does not determine"
                    ));
                }
            }
            let bound = self.sym.arena.substitute(s_value, &sigma);
            if bound != slice_e {
                return SliceVerdict::Unknown(format!(
                    "store at pc {s_pc} writes a value other than the slice recomputation"
                ));
            }
            unified.push((s_pc, s_addr));
        }

        // coverage: the loaded address was written (or never written and
        // initially equal) before the rcmp fires
        let Some(rcmp_block) = self.cfg.block_of_pc(meta.rcmp_pc) else {
            return SliceVerdict::Unknown("rcmp is outside the main-code CFG".to_string());
        };
        for &(s_pc, s_addr) in &unified {
            if let (Node::Const(k), Some(lk)) = (self.sym.arena.node(s_addr), addr_iv.as_const()) {
                if k == lk && self.executes_before(s_pc, meta.rcmp_pc) {
                    return SliceVerdict::Proven(ProofKind::GroundStore);
                }
            }
            if self.affine_covering_store(s_pc, s_addr, addr_iv, rcmp_block, meta.rcmp_pc) {
                return SliceVerdict::Proven(ProofKind::AffineLoop);
            }
        }
        if self.initial_const(addr_iv, program, slice_e) {
            // all stores agree with the slice, and so does the untouched
            // initial image — the load matches whether or not a store ran
            return SliceVerdict::Proven(ProofKind::InitialValue);
        }
        SliceVerdict::Unknown("no coverage proof (ground, affine, or initial)".to_string())
    }

    /// `true` if the initial image over the loaded range is a single
    /// constant equal to the slice expression.
    fn initial_const(&mut self, addr_iv: Interval, program: &Program, slice_e: ExprId) -> bool {
        match (
            initial_value_interval(addr_iv, program).as_const(),
            self.sym.arena.node(slice_e),
        ) {
            (Some(c), Node::Const(s)) => c == s,
            _ => false,
        }
    }

    fn rcmp_addr_expr(&mut self, rcmp_pc: usize) -> Result<ExprId, String> {
        let d = self
            .decoded
            .get(rcmp_pc)
            .ok_or_else(|| "slice rcmp_pc is outside the stream".to_string())?;
        let DecodedOp::Rcmp { offset, .. } = d.op else {
            return Err("slice rcmp_pc is not an RCMP".to_string());
        };
        let state = self
            .sym
            .state_at(self.decoded, self.cfg, rcmp_pc)
            .ok_or_else(|| "rcmp is unreachable".to_string())?;
        let base = match self.decoded[rcmp_pc].srcs[0] {
            Some(r) => state[r.index()],
            None => self.sym.arena.constant(0),
        };
        let off = self.sym.arena.constant(offset as u64);
        Ok(self.sym.arena.alu(AluOp::Add, base, off))
    }

    fn store_exprs(&mut self, s_pc: usize) -> Result<(ExprId, ExprId), String> {
        let DecodedOp::Store { offset } = self
            .decoded
            .get(s_pc)
            .ok_or_else(|| format!("store pc {s_pc} is outside the stream"))?
            .op
        else {
            return Err(format!("pc {s_pc} is not a store"));
        };
        let state = self
            .sym
            .state_at(self.decoded, self.cfg, s_pc)
            .ok_or_else(|| format!("store at pc {s_pc} has no symbolic state"))?;
        let d = &self.decoded[s_pc];
        let value = match d.srcs[0] {
            Some(r) => state[r.index()],
            None => self.sym.arena.constant(0),
        };
        let base = match d.srcs[1] {
            Some(r) => state[r.index()],
            None => self.sym.arena.constant(0),
        };
        let off = self.sym.arena.constant(offset as u64);
        let addr = self.sym.arena.alu(AluOp::Add, base, off);
        Ok((addr, value))
    }

    /// The affine coverage argument: the store sits in a stride-1 counted
    /// loop `tau = c0, c0+1, .., n-1` whose single exit is the head guard,
    /// executes on every iteration, and its address function sweeps an
    /// interval containing the whole loaded range; the rcmp is outside the
    /// loop and must-passes the store.
    fn affine_covering_store(
        &mut self,
        s_pc: usize,
        s_addr: ExprId,
        load_iv: Interval,
        rcmp_block: usize,
        rcmp_pc: usize,
    ) -> bool {
        // address shape: tau, or Add(Const, tau) / Add(tau, Const)
        let tok = match self.sym.arena.node(s_addr) {
            Node::Join { .. } => s_addr,
            Node::Alu {
                op: AluOp::Add,
                lhs,
                rhs,
            } => match (self.sym.arena.node(lhs), self.sym.arena.node(rhs)) {
                (Node::Const(_), Node::Join { .. }) => rhs,
                (Node::Join { .. }, Node::Const(_)) => lhs,
                _ => return false,
            },
            _ => return false,
        };
        let Node::Join { block: h, reg } = self.sym.arena.node(tok) else {
            return false;
        };
        let h = h as usize;
        if !self.cfg.loop_heads().contains(&h) {
            return false;
        }
        let body = crate::zerotrip::natural_loop(self.cfg, h);
        // loop shape sanity: body->head edges are exactly the back edges,
        // every non-head body block stays inside the loop and cannot end
        // execution (so leaving the loop means passing the head guard)
        for &p in &self.cfg.blocks[h].preds {
            if self.cfg.is_back_edge(p, h) != body.contains(&p) {
                return false;
            }
        }
        for &b in &body {
            if b == h {
                continue;
            }
            let succs = &self.cfg.blocks[b].succs;
            if succs.is_empty() || succs.iter().any(|s| !body.contains(s)) {
                return false;
            }
        }
        // join inputs: entry edges carry one constant c0, back edges tau+1
        let Some(inputs) = self.sym.join_inputs(h, reg).map(|v| v.to_vec()) else {
            return false;
        };
        let one = self.sym.arena.constant(1);
        let mut c0: Option<u64> = None;
        for (p, e) in inputs {
            if self.cfg.is_back_edge(p, h) {
                let ok = match self.sym.arena.node(e) {
                    Node::Alu {
                        op: AluOp::Add,
                        lhs,
                        rhs,
                    } => (lhs == tok && rhs == one) || (rhs == tok && lhs == one),
                    _ => false,
                };
                if !ok {
                    return false;
                }
            } else {
                match self.sym.arena.node(e) {
                    Node::Const(c) if c0.is_none_or(|x| x == c) => c0 = Some(c),
                    _ => return false,
                }
            }
        }
        let Some(c0) = c0 else { return false };
        // the head guard compares tau against a constant bound, continuing
        // exactly while tau < n (given stride 1 starting below n)
        let head_last = self.cfg.blocks[h].end - 1;
        let DecodedOp::Branch { cond, target } = self.decoded[head_last].op else {
            return false;
        };
        let Some(gs) = self.sym.state_at(self.decoded, self.cfg, head_last) else {
            return false;
        };
        let d = &self.decoded[head_last];
        let (Some(lr), Some(rr)) = (d.srcs[0], d.srcs[1]) else {
            return false;
        };
        if gs[lr.index()] != tok {
            return false;
        }
        let Node::Const(n) = self.sym.arena.node(gs[rr.index()]) else {
            return false;
        };
        let (Some(taken_b), Some(fall_b)) = (
            self.cfg.block_of_pc(target),
            self.cfg.block_of_pc(head_last + 1),
        ) else {
            return false;
        };
        if taken_b == fall_b {
            return false;
        }
        let guard_ok = match cond {
            // exit on taken: continue while !cond(tau, n)
            BranchCond::Geu | BranchCond::Eq => !body.contains(&taken_b) && body.contains(&fall_b),
            // exit on fallthrough: continue while cond(tau, n)
            BranchCond::Ltu | BranchCond::Ne => body.contains(&taken_b) && !body.contains(&fall_b),
            _ => false,
        };
        if !guard_ok || c0 >= n {
            return false;
        }
        // the store runs on every iteration, and the rcmp only after exit
        let Some(store_block) = self.cfg.block_of_pc(s_pc) else {
            return false;
        };
        if !body.contains(&store_block) || body.contains(&rcmp_block) {
            return false;
        }
        for b in 0..self.cfg.len() {
            if self.cfg.is_back_edge(b, h) && !self.cfg.block_dominates(store_block, b) {
                return false;
            }
        }
        if !self.executes_before(s_pc, rcmp_pc) {
            return false;
        }
        // swept interval [G(c0), G(n-1)] covers the loaded range
        let lo_c = self.sym.arena.constant(c0);
        let hi_c = self.sym.arena.constant(n - 1);
        let mut bind = HashMap::new();
        bind.insert(tok, lo_c);
        let g_lo = self.sym.arena.substitute(s_addr, &bind);
        bind.insert(tok, hi_c);
        let g_hi = self.sym.arena.substitute(s_addr, &bind);
        let (Node::Const(lo), Node::Const(hi)) =
            (self.sym.arena.node(g_lo), self.sym.arena.node(g_hi))
        else {
            return false;
        };
        if lo > hi {
            return false; // address sweep wraps: no contiguous guarantee
        }
        Interval::Range(lo, hi).covers(load_iv)
    }
}

/// Symbolic mirror of `DecodedInst::eval_compute` for slice-body
/// instructions; rejects anything outside the compute category.
fn compute_expr(
    arena: &mut ExprArena,
    d: &DecodedInst,
    vals: [ExprId; 3],
) -> Result<ExprId, String> {
    use crate::symbolic::PureKind;
    match d.op {
        DecodedOp::Li { imm } => Ok(arena.constant(imm)),
        DecodedOp::Alu { op } => Ok(arena.alu(op, vals[0], vals[1])),
        DecodedOp::Alui { op, imm } => {
            let i = arena.constant(imm);
            Ok(arena.alu(op, vals[0], i))
        }
        DecodedOp::Fpu { op } => {
            let z = arena.constant(0);
            Ok(arena.pure(PureKind::Fpu(op), [vals[0], vals[1], z]))
        }
        DecodedOp::FpuUn { op } => {
            let z = arena.constant(0);
            Ok(arena.pure(PureKind::FpuUn(op), [vals[0], z, z]))
        }
        DecodedOp::Fma => Ok(arena.pure(PureKind::Fma, vals)),
        DecodedOp::Cvt { kind } => {
            let z = arena.constant(0);
            Ok(arena.pure(PureKind::Cvt(kind), [vals[0], z, z]))
        }
        _ => Err("slice body contains a non-compute instruction".to_string()),
    }
}
