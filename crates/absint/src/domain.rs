//! The unsigned interval lattice over 64-bit machine words.
//!
//! An [`Interval`] abstracts a set of `u64` values as a contiguous
//! inclusive range `[lo, hi]`, with [`Interval::Bot`] for "no value"
//! (unreachable code, infeasible branch edges). The transfer functions
//! mirror [`amnesiac_isa::AluOp::apply`] exactly — including the ISA's
//! division-by-zero (`u64::MAX`), remainder-by-zero (the dividend), and
//! shift-modulo-64 conventions — and over-approximate whenever the precise
//! result set is not an interval (wrap-around straddles, bitwise ops,
//! floating point).

use amnesiac_isa::{AluOp, BranchCond};

/// An abstract 64-bit unsigned value: either no value, or every value in
/// an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// The empty set: unreachable, or an infeasible refinement.
    Bot,
    /// All values `v` with `lo <= v <= hi` (unsigned, inclusive).
    Range(u64, u64),
}

use Interval::{Bot, Range};

impl Interval {
    /// The full range `[0, u64::MAX]` — no information.
    pub const TOP: Interval = Range(0, u64::MAX);

    /// The singleton `[c, c]`.
    pub fn constant(c: u64) -> Interval {
        Range(c, c)
    }

    /// `Some(c)` if this is the singleton `[c, c]`.
    pub fn as_const(self) -> Option<u64> {
        match self {
            Range(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// `true` for the full range.
    pub fn is_top(self) -> bool {
        self == Self::TOP
    }

    /// `true` if `v` is in the abstract set.
    pub fn contains(self, v: u64) -> bool {
        match self {
            Bot => false,
            Range(lo, hi) => lo <= v && v <= hi,
        }
    }

    /// Least upper bound: the smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Range(a, b), Range(c, d)) => Range(a.min(c), b.max(d)),
        }
    }

    /// Greatest lower bound: the intersection.
    pub fn meet(self, other: Interval) -> Interval {
        match (self, other) {
            (Bot, _) | (_, Bot) => Bot,
            (Range(a, b), Range(c, d)) => {
                let lo = a.max(c);
                let hi = b.min(d);
                if lo <= hi {
                    Range(lo, hi)
                } else {
                    Bot
                }
            }
        }
    }

    /// `true` if the two abstract sets share at least one value.
    pub fn intersects(self, other: Interval) -> bool {
        self.meet(other) != Bot
    }

    /// `true` if every value of `other` is contained in `self`.
    pub fn covers(self, other: Interval) -> bool {
        match (self, other) {
            (_, Bot) => true,
            (Bot, _) => false,
            (Range(a, b), Range(c, d)) => a <= c && d <= b,
        }
    }

    /// Standard interval widening: any bound that moved since `self` jumps
    /// straight to its extreme, guaranteeing termination at loop heads.
    pub fn widen(self, next: Interval) -> Interval {
        match (self, next) {
            (Bot, x) | (x, Bot) => x,
            (Range(a, b), Range(c, d)) => {
                let lo = if c < a { 0 } else { a };
                let hi = if d > b { u64::MAX } else { b };
                Range(lo, hi)
            }
        }
    }

    /// Wrapping addition of a constant (the ISA's effective-address rule
    /// `base.wrapping_add(offset as u64)`). Exact when both shifted bounds
    /// wrap together; `TOP` when the range straddles the wrap point.
    pub fn wrapping_add_const(self, c: u64) -> Interval {
        match self {
            Bot => Bot,
            Range(lo, hi) => {
                let (nl, lw) = lo.overflowing_add(c);
                let (nh, hw) = hi.overflowing_add(c);
                if lw == hw {
                    Range(nl, nh)
                } else {
                    Self::TOP
                }
            }
        }
    }

    /// Applies an integer ALU operation abstractly. Sound for every
    /// concrete pair drawn from the operands, matching
    /// [`AluOp::apply`]'s edge-case conventions.
    pub fn alu(op: AluOp, lhs: Interval, rhs: Interval) -> Interval {
        let (Range(a, b), Range(c, d)) = (lhs, rhs) else {
            return Bot;
        };
        match op {
            AluOp::Add => {
                let (nl, lw) = a.overflowing_add(c);
                let (nh, hw) = b.overflowing_add(d);
                if lw == hw {
                    Range(nl, nh)
                } else {
                    Self::TOP
                }
            }
            AluOp::Sub => {
                let (nl, lw) = a.overflowing_sub(d);
                let (nh, hw) = b.overflowing_sub(c);
                if lw == hw {
                    Range(nl, nh)
                } else {
                    Self::TOP
                }
            }
            AluOp::Mul => match (a.checked_mul(c), b.checked_mul(d)) {
                (Some(nl), Some(nh)) => Range(nl, nh),
                _ => Self::TOP,
            },
            AluOp::Div => {
                // division by zero yields all-ones in this ISA
                let mut out = Bot;
                if c == 0 {
                    out = out.join(Interval::constant(u64::MAX));
                }
                if let Some(lo) = a.checked_div(d) {
                    out = out.join(Range(lo, b / c.max(1)));
                }
                out
            }
            AluOp::Rem => {
                // remainder by zero yields the dividend
                let mut out = Bot;
                if c == 0 {
                    out = out.join(lhs);
                }
                if d > 0 {
                    out = out.join(Range(0, (d - 1).min(b)));
                }
                out
            }
            AluOp::And => match (lhs.as_const(), rhs.as_const()) {
                (Some(x), Some(y)) => Interval::constant(x & y),
                // a & b is never larger than either operand
                _ => Range(0, b.min(d)),
            },
            AluOp::Or | AluOp::Xor => match (lhs.as_const(), rhs.as_const()) {
                (Some(x), Some(y)) => {
                    Interval::constant(if op == AluOp::Or { x | y } else { x ^ y })
                }
                // bounded by the highest bit either operand can set
                _ => Range(0, bit_ceiling(b | d)),
            },
            AluOp::Shl => match rhs.as_const() {
                Some(s) => {
                    let s = s & 63;
                    match (a.checked_shl(s as u32), b.checked_shl(s as u32)) {
                        (Some(nl), Some(nh)) if b.leading_zeros() as u64 >= s => Range(nl, nh),
                        _ => Self::TOP,
                    }
                }
                None => Self::TOP,
            },
            AluOp::Shr => match rhs.as_const() {
                Some(s) => {
                    let s = s & 63;
                    Range(a >> s, b >> s)
                }
                None => Range(0, b),
            },
            AluOp::Slt => {
                // signed compare: only decidable here when both ranges stay
                // in the non-negative half, where it agrees with unsigned
                if b <= i64::MAX as u64 && d <= i64::MAX as u64 {
                    Self::alu(AluOp::Sltu, lhs, rhs)
                } else {
                    Range(0, 1)
                }
            }
            AluOp::Sltu => {
                if b < c {
                    Interval::constant(1)
                } else if a >= d {
                    Interval::constant(0)
                } else {
                    Range(0, 1)
                }
            }
            AluOp::Seq => {
                if lhs.as_const().is_some() && lhs == rhs {
                    Interval::constant(1)
                } else if !lhs.intersects(rhs) {
                    Interval::constant(0)
                } else {
                    Range(0, 1)
                }
            }
            AluOp::Min => Range(a.min(c), b.min(d)),
            AluOp::Max => Range(a.max(c), b.max(d)),
        }
    }

    /// Refines `(lhs, rhs)` assuming the branch condition evaluated to
    /// `taken`. Returns `Bot` components when the assumption is infeasible
    /// — the caller kills the corresponding CFG edge.
    ///
    /// Signed conditions refine only when both operands provably sit in
    /// the non-negative half, where signed and unsigned order coincide.
    pub fn refine(
        cond: BranchCond,
        taken: bool,
        lhs: Interval,
        rhs: Interval,
    ) -> (Interval, Interval) {
        let (Range(a, b), Range(c, d)) = (lhs, rhs) else {
            return (Bot, Bot);
        };
        // reduce everything to Eq / Ne / Ltu / Geu
        let (cond, taken) = match cond {
            BranchCond::Lt | BranchCond::Ge if b <= i64::MAX as u64 && d <= i64::MAX as u64 => (
                if cond == BranchCond::Lt {
                    BranchCond::Ltu
                } else {
                    BranchCond::Geu
                },
                taken,
            ),
            BranchCond::Lt | BranchCond::Ge => return (lhs, rhs),
            c => (c, taken),
        };
        let lt = matches!(
            (cond, taken),
            (BranchCond::Ltu, true) | (BranchCond::Geu, false)
        );
        let ge = matches!(
            (cond, taken),
            (BranchCond::Geu, true) | (BranchCond::Ltu, false)
        );
        if lt {
            // lhs < rhs: lhs caps below max(rhs), rhs floors above min(lhs)
            let nl = if d == 0 {
                Bot
            } else {
                lhs.meet(Range(0, d - 1))
            };
            let nr = if a == u64::MAX {
                Bot
            } else {
                rhs.meet(Range(a + 1, u64::MAX))
            };
            return (nl, nr);
        }
        if ge {
            // lhs >= rhs: lhs floors at min(rhs), rhs caps at max(lhs)
            let nl = lhs.meet(Range(c, u64::MAX));
            let nr = rhs.meet(Range(0, b));
            return (nl, nr);
        }
        match (cond, taken) {
            (BranchCond::Eq, true) | (BranchCond::Ne, false) => {
                let m = lhs.meet(rhs);
                (m, m)
            }
            (BranchCond::Eq, false) | (BranchCond::Ne, true) => {
                (exclude_const(lhs, rhs), exclude_const(rhs, lhs))
            }
            _ => (lhs, rhs),
        }
    }
}

/// `x` minus the value of `other` when `other` is a constant at one of
/// `x`'s endpoints — the only case an interval can express `!=`.
fn exclude_const(x: Interval, other: Interval) -> Interval {
    let (Some(c), Range(lo, hi)) = (other.as_const(), x) else {
        return x;
    };
    if lo == hi && lo == c {
        Bot
    } else if lo == c {
        Range(lo + 1, hi)
    } else if hi == c {
        Range(lo, hi - 1)
    } else {
        x
    }
}

/// The all-ones mask covering every bit position at or below the highest
/// set bit of `v` (0 for 0): an upper bound for `|` and `^` results.
fn bit_ceiling(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_rng::Rng;

    #[test]
    fn lattice_basics() {
        let a = Range(3, 7);
        let b = Range(5, 10);
        assert_eq!(a.join(b), Range(3, 10));
        assert_eq!(a.meet(b), Range(5, 7));
        assert_eq!(Range(0, 1).meet(Range(4, 5)), Bot);
        assert_eq!(Bot.join(a), a);
        assert!(Interval::TOP.covers(a));
        assert!(!a.covers(Interval::TOP));
        assert_eq!(Interval::constant(4).as_const(), Some(4));
    }

    #[test]
    fn widening_terminates_at_extremes() {
        let w = Range(0, 5).widen(Range(0, 6));
        assert_eq!(w, Range(0, u64::MAX));
        let w2 = Range(5, 9).widen(Range(4, 9));
        assert_eq!(w2, Range(0, 9));
        assert_eq!(Range(1, 2).widen(Range(1, 2)), Range(1, 2));
    }

    #[test]
    fn refinement_narrows_loop_guards() {
        // i in [0, MAX], n = 50: the "enter body" edge of `bgeu i, n, exit`
        let i = Interval::TOP;
        let n = Interval::constant(50);
        let (body_i, _) = Interval::refine(BranchCond::Geu, false, i, n);
        assert_eq!(body_i, Range(0, 49));
        let (exit_i, _) = Interval::refine(BranchCond::Geu, true, i, n);
        assert_eq!(exit_i, Range(50, u64::MAX));
        // first visit with i = 0 cannot take the exit edge
        let (inf, _) = Interval::refine(BranchCond::Geu, true, Interval::constant(0), n);
        assert_eq!(inf, Bot);
    }

    /// Every ALU transfer function is sound: apply the abstract op to two
    /// random intervals, then check random concrete pairs land inside.
    #[test]
    fn alu_transfer_is_sound_on_random_samples() {
        let mut rng = Rng::seed_from_u64(0xAB51);
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Seq,
            AluOp::Min,
            AluOp::Max,
        ];
        for _ in 0..4000 {
            let op = ops[rng.below(ops.len() as u64) as usize];
            let mk = |rng: &mut Rng| {
                // mix small ranges, wide ranges, and extremes
                let lo = match rng.below(3) {
                    0 => rng.below(100),
                    1 => u64::MAX - rng.below(100),
                    _ => rng.next_u64(),
                };
                let hi = lo.saturating_add(rng.below(64));
                Range(lo, hi)
            };
            let (la, lb) = (mk(&mut rng), mk(&mut rng));
            let abs = Interval::alu(op, la, lb);
            for _ in 0..8 {
                let (Range(a, b), Range(c, d)) = (la, lb) else {
                    unreachable!()
                };
                let x = a + rng.below(b - a + 1);
                let y = c + rng.below(d - c + 1);
                let concrete = op.apply(x, y);
                assert!(
                    abs.contains(concrete),
                    "{op:?}: {x} op {y} = {concrete} outside {abs:?} (from {la:?}, {lb:?})"
                );
            }
        }
    }

    /// Branch refinement never drops a concrete pair that satisfies the
    /// assumed outcome.
    #[test]
    fn refinement_is_sound_on_random_samples() {
        let mut rng = Rng::seed_from_u64(0x4EF1);
        for _ in 0..4000 {
            let cond = BranchCond::ALL[rng.below(6) as usize];
            let taken = rng.below(2) == 0;
            let lo1 = rng.below(1000);
            let r1 = Range(lo1, lo1 + rng.below(50));
            let lo2 = rng.below(1000);
            let r2 = Range(lo2, lo2 + rng.below(50));
            let (n1, n2) = Interval::refine(cond, taken, r1, r2);
            let (Range(a, b), Range(c, d)) = (r1, r2) else {
                unreachable!()
            };
            for _ in 0..8 {
                let x = a + rng.below(b - a + 1);
                let y = c + rng.below(d - c + 1);
                if cond.eval(x, y) == taken {
                    assert!(
                        n1.contains(x) && n2.contains(y),
                        "{cond:?}/{taken}: ({x}, {y}) dropped from ({r1:?}, {r2:?}) -> ({n1:?}, {n2:?})"
                    );
                }
            }
        }
    }
}
