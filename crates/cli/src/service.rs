//! The service layer glue: plugs the typed [`crate::run`] core into
//! `amnesiac-serve`.
//!
//! [`serve_handler`] maps wire verbs onto [`Command`]s and returns
//! [`Response::payload_json`] — the same document `--json <dir>` writes
//! — so a socket client and the CLI see identical payloads for the same
//! verb. [`run_serve`] hosts the public service; [`run_serve_smoke`]
//! boots a private server on an ephemeral port and fires a mixed
//! concurrent batch at it, checking every response against the typed
//! core it is supposed to mirror.

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use amnesiac_serve::{code, Client, Handler, Request, Response as WireResponse, ServeError};
use amnesiac_serve::{Server, ServerConfig};
use amnesiac_telemetry::Json;
use amnesiac_workloads::Scale;

use crate::{CliError, Command, Response, Verb};

/// How many concurrent clients the smoke test drives — the acceptance
/// bar is a mixed batch with zero dropped or mismatched responses.
const SMOKE_CLIENTS: usize = 8;

/// The wire-facing brain: parses a [`Request`] into a [`Command`], runs
/// the typed core, and answers with [`Response::payload_json`].
///
/// Exposed verbs: `compile`, `simulate` (alias `run`), `verify`
/// (sweeps the suite when no target is given), `bench` (alias
/// `compare`), `experiments`, plus the read-only `disasm` / `profile` /
/// `trace`. Failure-shaped outcomes (a dirty `verify`) still answer
/// `ok` with the full structured payload; only pipeline faults become
/// error payloads, carrying [`CliError::code`].
pub fn serve_handler() -> Handler {
    Arc::new(|request: &Request| {
        let command = request_command(request)?;
        let response = crate::run(&command).map_err(|e| ServeError::new(e.code(), e.message()))?;
        Ok(response.payload_json())
    })
}

/// Maps a wire request onto the typed [`Command`] it stands for.
fn request_command(request: &Request) -> Result<Command, ServeError> {
    let verb = match request.verb.as_str() {
        "compile" => Verb::Compile,
        "simulate" | "run" => Verb::Run,
        "verify" => Verb::Verify,
        "bench" | "compare" => Verb::Compare,
        "experiments" => Verb::Experiments,
        "disasm" => Verb::Disasm,
        "profile" => Verb::Profile,
        "trace" => Verb::Trace,
        other => {
            return Err(ServeError::new(
                code::USAGE,
                format!(
                    "unknown verb `{other}`; this server answers compile, simulate, \
                     verify, bench, experiments, disasm, profile, and trace"
                ),
            ))
        }
    };
    let scale = match request.scale.as_deref() {
        None => None,
        Some("test") => Some(Scale::Test),
        Some("paper") => Some(Scale::Paper),
        Some(other) => {
            return Err(ServeError::bad_request(format!(
                "scale `{other}` is neither `test` nor `paper`"
            )))
        }
    };
    let target = request.target.clone();
    if target.is_none() && !matches!(verb, Verb::Verify | Verb::Experiments) {
        return Err(ServeError::bad_request(format!(
            "verb `{}` needs a target (a path or `bench:<name>`)",
            request.verb
        )));
    }
    Ok(Command {
        verb,
        target,
        output: None,
        paper_scale: false,
        scale,
        json_dir: None,
        tolerance: None,
        reps: None,
        port: None,
        workers: None,
        backlog: None,
        timeout_ms: None,
    })
}

/// Builds the server configuration from the serve flags, keeping the
/// crate defaults for anything not given.
fn server_config(command: &Command) -> ServerConfig {
    let mut config = ServerConfig::default();
    if let Some(port) = command.port {
        config.port = port;
    }
    if let Some(workers) = command.workers {
        config.workers = workers;
    }
    if let Some(backlog) = command.backlog {
        config.backlog = backlog;
    }
    if let Some(timeout_ms) = command.timeout_ms {
        config.timeout_ms = timeout_ms;
    }
    config
}

/// The `serve` verb: host the line-protocol service until a `shutdown`
/// request drains it.
pub(crate) fn run_serve(command: &Command) -> Result<Response, CliError> {
    let config = server_config(command);
    let (workers, backlog, timeout_ms) = (config.workers, config.backlog, config.timeout_ms);
    let mut server = Server::start(config, serve_handler())
        .map_err(|e| CliError::Tool(format!("cannot start server: {e}")))?;
    let addr = server.addr();
    println!(
        "amnesiac-serve listening on {addr} ({workers} workers, backlog {backlog}, \
         timeout {timeout_ms} ms) — send {{\"verb\":\"shutdown\"}} to drain and stop"
    );
    std::io::stdout().flush().ok();
    server.join();
    let stats = server.stats_json();
    Ok(Response::Serve {
        addr: addr.to_string(),
        stats,
    })
}

/// One smoke case: the request to put on the wire and the payload the
/// typed core produces for the equivalent command.
struct SmokeCase {
    request: Request,
    expected: Json,
}

/// The mixed batch every smoke client fires: one request per exposed
/// service verb family, all deterministic (no wall-clock fields), so
/// wire payloads must equal the typed core's documents byte for byte.
fn smoke_cases() -> Result<Vec<SmokeCase>, CliError> {
    let specs: &[(&str, Option<&str>)] = &[
        ("compile", Some("bench:is")),
        ("simulate", Some("bench:sr")),
        ("verify", Some("bench:is")),
        ("bench", Some("bench:is")),
        ("disasm", Some("bench:cg")),
    ];
    let mut cases = Vec::new();
    for (verb, target) in specs {
        let mut request = Request::new(*verb);
        if let Some(target) = target {
            request = request.with_target(*target);
        }
        let command = request_command(&request)
            .map_err(|e| CliError::Tool(format!("smoke case `{verb}`: {e}")))?;
        let expected = crate::run(&command)?.payload_json();
        cases.push(SmokeCase { request, expected });
    }
    Ok(cases)
}

/// Drives one client through the full mixed batch, pipelined; returns a
/// description of every check that failed.
fn smoke_client(addr: SocketAddr, client_id: usize, cases: &[SmokeCase]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return vec![format!("client {client_id}: connect failed: {e}")],
    };
    client.set_read_timeout(Some(Duration::from_secs(300))).ok();
    let requests: Vec<Request> = cases
        .iter()
        .enumerate()
        .map(|(i, case)| {
            case.request
                .clone()
                .with_id(format!("c{client_id}-{i}-{}", case.request.verb))
        })
        .collect();
    let responses: Vec<WireResponse> = match client.batch(&requests) {
        Ok(responses) => responses,
        Err(e) => return vec![format!("client {client_id}: batch failed: {e}")],
    };
    for ((request, response), case) in requests.iter().zip(&responses).zip(cases) {
        let label = format!("client {client_id} verb `{}`", request.verb);
        if response.id != request.id {
            failures.push(format!(
                "{label}: id `{}` echoed as `{}`",
                request.id.compact(),
                response.id.compact()
            ));
            continue;
        }
        match response.payload() {
            Some(payload) if *payload == case.expected => {}
            Some(_) => failures.push(format!("{label}: payload differs from the typed core")),
            None => failures.push(format!(
                "{label}: error response: {}",
                response
                    .error()
                    .map(|e| format!("{} ({})", e.message, e.code))
                    .unwrap_or_default()
            )),
        }
    }
    failures
}

/// The `serve-smoke` verb: an in-process end-to-end self-test — boots a
/// server on an ephemeral port, drives [`SMOKE_CLIENTS`] concurrent
/// clients through a mixed batch, and checks every wire payload against
/// the typed core plus the server's own statistics.
pub(crate) fn run_serve_smoke(command: &Command) -> Result<Response, CliError> {
    let mut config = server_config(command);
    if command.port.is_none() {
        config.port = 0; // ephemeral: never collide with a real service
    }
    if command.timeout_ms.is_none() {
        config.timeout_ms = 300_000; // generous — the deadline path has its own tests
    }
    let cases = smoke_cases()?;
    let server = Server::start(config, serve_handler())
        .map_err(|e| CliError::Tool(format!("cannot start smoke server: {e}")))?;
    let addr = server.addr();

    let mut checks = 0usize;
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SMOKE_CLIENTS)
            .map(|client_id| {
                let cases = &cases;
                scope.spawn(move || smoke_client(addr, client_id, cases))
            })
            .collect();
        for handle in handles {
            checks += cases.len();
            match handle.join() {
                Ok(client_failures) => failures.extend(client_failures),
                Err(_) => failures.push("smoke client thread panicked".to_string()),
            }
        }
    });

    // The per-verb counters must account for every request we sent.
    checks += 1;
    let mut admin = Client::connect(addr)
        .map_err(|e| CliError::Tool(format!("cannot connect stats client: {e}")))?;
    match admin.call(&Request::new("stats").with_id("stats")) {
        Ok(response) => match response.payload() {
            Some(payload) => {
                let compiles = payload
                    .get_path("verbs.compile.requests")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as usize;
                if compiles < SMOKE_CLIENTS {
                    failures.push(format!(
                        "stats: saw {compiles} compile requests, expected at least {SMOKE_CLIENTS}"
                    ));
                }
            }
            None => failures.push("stats request answered with an error".to_string()),
        },
        Err(e) => failures.push(format!("stats request failed: {e}")),
    }

    // Unknown verbs must come back as structured usage errors, not
    // dropped connections.
    checks += 1;
    match admin.call(&Request::new("frobnicate").with_id("bad")) {
        Ok(response) => match response.error() {
            Some(error) if error.code == code::USAGE => {}
            Some(error) => failures.push(format!(
                "unknown verb: expected code `{}`, got `{}`",
                code::USAGE,
                error.code
            )),
            None => failures.push("unknown verb unexpectedly succeeded".to_string()),
        },
        Err(e) => failures.push(format!("unknown-verb request failed: {e}")),
    }

    let stats = server.stats_json();
    server.stop();
    Ok(Response::ServeSmoke {
        checks,
        failures,
        stats,
    })
}
