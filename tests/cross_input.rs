//! Cross-input generalization: the paper profiles and evaluates on the
//! same input. Here we go further — compile on input A, then run the
//! annotated binary on input B (same program structure, different
//! read-only data). Because the surviving slices recompute pure functions
//! of live registers and invariant checkpoints, they must stay bit-exact
//! on inputs they were never profiled on. The runtime's `check_values`
//! cross-check stays enabled, so any stale-slice escape would fail loudly.

use amnesiac::compiler::{compile, CompileOptions};
use amnesiac::core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac::mem::{CacheConfig, HierarchyConfig};
use amnesiac::profile::profile_program;
use amnesiac::sim::{ClassicCore, CoreConfig};
use amnesiac::workloads::{build_focal_with_input, Scale};

/// Tiny caches (8-byte lines) so the test-scale kernels' reloads miss and
/// the compiler actually selects slices.
fn small_config() -> CoreConfig {
    let mut c = CoreConfig::paper();
    c.hierarchy = HierarchyConfig {
        l1i: CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        },
        l1d: CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 8,
        },
        l2: CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 8,
        },
        next_line_prefetch: false,
    };
    c
}

const SEED_TRAIN: u64 = 1_000;
const SEED_TEST: u64 = 2_000;

#[test]
fn slices_compiled_on_one_input_stay_exact_on_another() {
    for name in ["mcf", "is", "ca"] {
        let train = build_focal_with_input(name, Scale::Test, SEED_TRAIN).program;
        let test = build_focal_with_input(name, Scale::Test, SEED_TEST).program;
        assert_eq!(
            train.instructions, test.instructions,
            "{name}: seeded variants must share code"
        );

        let config = small_config();
        let (profile, _) = profile_program(&train, &config).expect("profiles train input");
        let (binary_train, report) =
            compile(&train, &profile, &CompileOptions::default()).expect("compiles");
        assert!(
            report.n_selected() >= 1,
            "{name}: the train input should produce slices at test scale"
        );

        // transplant the annotated code onto the test input's data image
        let mut binary_test = binary_train.clone();
        binary_test.data = test.data.clone();

        let classic_test = ClassicCore::new(config.clone())
            .run(&test)
            .expect("classic");
        for policy in Policy::ALL_EXTENDED {
            let result = AmnesicCore::new(AmnesicConfig {
                core: config.clone(),
                ..AmnesicConfig::paper(policy)
            })
            .run(&binary_test)
            .unwrap_or_else(|e| panic!("{name}: {policy} on unseen input failed: {e}"));
            assert_eq!(
                result.run.final_memory, classic_test.final_memory,
                "{name}: {policy} diverged on an unseen input"
            );
        }
    }
}

#[test]
fn profiles_of_different_inputs_agree_on_slice_shapes() {
    // the canonical producer trees are input-independent for these
    // kernels: compiling either input yields the same slice bodies
    for name in ["mcf", "is"] {
        let a = build_focal_with_input(name, Scale::Test, SEED_TRAIN).program;
        let b = build_focal_with_input(name, Scale::Test, SEED_TEST).program;
        let config = small_config();
        let (profile_a, _) = profile_program(&a, &config).unwrap();
        let (profile_b, _) = profile_program(&b, &config).unwrap();
        let (bin_a, _) = compile(&a, &profile_a, &CompileOptions::default()).unwrap();
        let (bin_b, _) = compile(&b, &profile_b, &CompileOptions::default()).unwrap();
        assert_eq!(
            bin_a.instructions, bin_b.instructions,
            "{name}: slice bodies must not depend on the input data"
        );
    }
}
