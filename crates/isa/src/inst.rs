//! Instruction definitions: opcodes, operand accessors, and energy
//! categories.

use crate::program::SliceId;
use crate::Reg;

/// Maximum number of register source operands of any instruction.
///
/// Reached only by [`Instruction::Fma`]; the paper's §3.4 storage analysis
/// (`max#rename = max#src + max#dest`) depends on this bound.
pub const MAX_SRC_OPERANDS: usize = 3;

/// Maximum number of register destination operands of any instruction.
pub const MAX_DEST_OPERANDS: usize = 1;

/// Integer ALU operations (two register sources or register + immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields all-ones (and records an exception
    /// under amnesic execution, see the paper's §2.3).
    Div,
    /// Remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right (shift amount taken modulo 64).
    Shr,
    /// Set-if-less-than, signed comparison; result is 0 or 1.
    Slt,
    /// Set-if-less-than, unsigned comparison; result is 0 or 1.
    Sltu,
    /// Set-if-equal; result is 0 or 1.
    Seq,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
}

impl AluOp {
    /// All integer ALU operations, for exhaustive testing and random
    /// program generation.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
        AluOp::Min,
        AluOp::Max,
    ];

    /// Applies the operation to two 64-bit operands.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Div => {
                if rhs == 0 {
                    u64::MAX
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            AluOp::Rem => {
                if rhs == 0 {
                    lhs
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs.wrapping_shl((rhs % 64) as u32),
            AluOp::Shr => lhs.wrapping_shr((rhs % 64) as u32),
            AluOp::Slt => ((lhs as i64) < (rhs as i64)) as u64,
            AluOp::Sltu => (lhs < rhs) as u64,
            AluOp::Seq => (lhs == rhs) as u64,
            AluOp::Min => lhs.min(rhs),
            AluOp::Max => lhs.max(rhs),
        }
    }

    /// The energy category of this operation.
    pub fn category(self) -> Category {
        match self {
            AluOp::Mul => Category::IntMul,
            AluOp::Div | AluOp::Rem => Category::IntDiv,
            _ => Category::IntAlu,
        }
    }
}

/// Binary floating-point operations on `f64` bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// IEEE-754 addition.
    Add,
    /// IEEE-754 subtraction.
    Sub,
    /// IEEE-754 multiplication.
    Mul,
    /// IEEE-754 division.
    Div,
    /// Minimum (propagating the first operand on NaN).
    Min,
    /// Maximum (propagating the first operand on NaN).
    Max,
    /// Set-if-less-than; result is integer 0 or 1.
    Flt,
}

impl FpOp {
    /// All binary FP operations.
    pub const ALL: [FpOp; 7] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Min,
        FpOp::Max,
        FpOp::Flt,
    ];

    /// Applies the operation to two operands interpreted as `f64`.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        let a = f64::from_bits(lhs);
        let b = f64::from_bits(rhs);
        match self {
            FpOp::Add => (a + b).to_bits(),
            FpOp::Sub => (a - b).to_bits(),
            FpOp::Mul => (a * b).to_bits(),
            FpOp::Div => (a / b).to_bits(),
            FpOp::Min => {
                if a.is_nan() || a <= b {
                    lhs
                } else {
                    rhs
                }
            }
            FpOp::Max => {
                if a.is_nan() || a >= b {
                    lhs
                } else {
                    rhs
                }
            }
            FpOp::Flt => (a < b) as u64,
        }
    }

    /// The energy category of this operation.
    pub fn category(self) -> Category {
        match self {
            FpOp::Mul => Category::FpMul,
            FpOp::Div => Category::FpDiv,
            _ => Category::FpAdd,
        }
    }
}

/// Unary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnOp {
    /// Square root.
    Sqrt,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
}

impl FpUnOp {
    /// All unary FP operations.
    pub const ALL: [FpUnOp; 5] = [
        FpUnOp::Sqrt,
        FpUnOp::Neg,
        FpUnOp::Abs,
        FpUnOp::Exp,
        FpUnOp::Ln,
    ];

    /// Applies the operation to an operand interpreted as `f64`.
    pub fn apply(self, src: u64) -> u64 {
        let x = f64::from_bits(src);
        match self {
            FpUnOp::Sqrt => x.sqrt().to_bits(),
            FpUnOp::Neg => (-x).to_bits(),
            FpUnOp::Abs => x.abs().to_bits(),
            FpUnOp::Exp => x.exp().to_bits(),
            FpUnOp::Ln => x.ln().to_bits(),
        }
    }

    /// The energy category of this operation. The transcendental and root
    /// operations are modelled at FP-divide cost.
    pub fn category(self) -> Category {
        match self {
            FpUnOp::Neg | FpUnOp::Abs => Category::FpAdd,
            _ => Category::FpDiv,
        }
    }
}

/// Conversions between the integer and floating-point views of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CvtKind {
    /// Signed integer → `f64`.
    I2F,
    /// `f64` → signed integer (saturating, NaN → 0).
    F2I,
}

impl CvtKind {
    /// Applies the conversion.
    pub fn apply(self, src: u64) -> u64 {
        match self {
            CvtKind::I2F => ((src as i64) as f64).to_bits(),
            CvtKind::F2I => {
                let x = f64::from_bits(src);
                if x.is_nan() {
                    0
                } else {
                    (x as i64) as u64
                }
            }
        }
    }
}

/// Branch conditions comparing two registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken if equal.
    Eq,
    /// Taken if not equal.
    Ne,
    /// Taken if signed less-than.
    Lt,
    /// Taken if signed greater-or-equal.
    Ge,
    /// Taken if unsigned less-than.
    Ltu,
    /// Taken if unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// All branch conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluates the condition on two 64-bit operands.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i64) < (rhs as i64),
            BranchCond::Ge => (lhs as i64) >= (rhs as i64),
            BranchCond::Ltu => lhs < rhs,
            BranchCond::Geu => lhs >= rhs,
        }
    }
}

/// Energy/accounting category of a dynamic instruction.
///
/// Categories follow the paper's evaluation: `Load`, `Store` and everything
/// else ("Non-mem", split here by functional unit so the EPI table can be
/// calibrated per category as in §3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Simple integer ALU (add/sub/logic/shift/compare) and immediates.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// FP add/sub/min/max/compare and conversions.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide, square root, transcendental.
    FpDiv,
    /// Fused multiply-add.
    Fma,
    /// Memory load (also the load half of an `RCMP` that performs the load).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// `RCMP` decision overhead (modelled as a conditional branch, §4).
    Rcmp,
    /// `RTN` overhead (modelled as a jump, §4).
    Rtn,
    /// `REC` overhead (modelled as a store to L1-D, §4).
    Rec,
}

impl Category {
    /// All categories, in a stable order (useful for report tables).
    pub const ALL: [Category; 14] = [
        Category::IntAlu,
        Category::IntMul,
        Category::IntDiv,
        Category::FpAdd,
        Category::FpMul,
        Category::FpDiv,
        Category::Fma,
        Category::Load,
        Category::Store,
        Category::Branch,
        Category::Jump,
        Category::Rcmp,
        Category::Rtn,
        Category::Rec,
    ];

    /// Returns `true` for the categories that access data memory under
    /// classic execution (`Load`, `Store`).
    pub fn is_memory(self) -> bool {
        matches!(self, Category::Load | Category::Store)
    }

    /// Returns `true` for the "Non-mem" bucket of the paper's Table 4:
    /// everything that is neither a load nor a store. The amnesic control
    /// instructions count as non-memory overhead.
    pub fn is_non_mem(self) -> bool {
        !self.is_memory()
    }
}

/// A single machine instruction.
///
/// The `target` of control-flow instructions is an absolute instruction
/// index into [`crate::Program::instructions`]. Operand field names follow
/// the RISC convention (`dst`, `lhs`, `rhs`, `src`, `base`, `offset`,
/// `imm`) and are documented once here rather than per variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields use the conventional names above
pub enum Instruction {
    /// Load a 64-bit immediate into `dst`.
    Li { dst: Reg, imm: u64 },
    /// Register-register integer ALU operation.
    Alu {
        op: AluOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Register-immediate integer ALU operation.
    Alui {
        op: AluOp,
        dst: Reg,
        src: Reg,
        imm: u64,
    },
    /// Register-register binary FP operation.
    Fpu {
        op: FpOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    /// Unary FP operation.
    FpuUn { op: FpUnOp, dst: Reg, src: Reg },
    /// Fused multiply-add: `dst = a * b + c` in `f64`.
    Fma { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// Int/FP conversion.
    Cvt { kind: CvtKind, dst: Reg, src: Reg },
    /// Load `dst ← mem[reg(base) + offset]` (word addressed).
    Load { dst: Reg, base: Reg, offset: i64 },
    /// Store `mem[reg(base) + offset] ← src` (word addressed).
    Store { src: Reg, base: Reg, offset: i64 },
    /// Conditional branch to `target`.
    Branch {
        cond: BranchCond,
        lhs: Reg,
        rhs: Reg,
        target: usize,
    },
    /// Unconditional jump to `target`.
    Jump { target: usize },
    /// Stop execution.
    Halt,
    /// Amnesic: fused branch+load. Either loads `dst ← mem[base + offset]`
    /// or branches to the entry of slice `slice`, per the runtime policy.
    Rcmp {
        dst: Reg,
        base: Reg,
        offset: i64,
        slice: SliceId,
    },
    /// Amnesic: end of a slice body; control returns after the `RCMP`.
    Rtn { slice: SliceId },
    /// Amnesic: checkpoint the current values of `srcs` into the `Hist`
    /// entry for leaf address `key` (§3.1.2; shared by every slice whose
    /// replica leaf has this origin).
    Rec {
        key: u16,
        srcs: [Option<Reg>; MAX_SRC_OPERANDS],
    },
}

impl Instruction {
    /// The energy/accounting category of this instruction.
    pub fn category(&self) -> Category {
        match self {
            Instruction::Li { .. } => Category::IntAlu,
            Instruction::Alu { op, .. } | Instruction::Alui { op, .. } => op.category(),
            Instruction::Fpu { op, .. } => op.category(),
            Instruction::FpuUn { op, .. } => op.category(),
            Instruction::Fma { .. } => Category::Fma,
            Instruction::Cvt { .. } => Category::FpAdd,
            Instruction::Load { .. } => Category::Load,
            Instruction::Store { .. } => Category::Store,
            Instruction::Branch { .. } => Category::Branch,
            Instruction::Jump { .. } => Category::Jump,
            Instruction::Halt => Category::Jump,
            Instruction::Rcmp { .. } => Category::Rcmp,
            Instruction::Rtn { .. } => Category::Rtn,
            Instruction::Rec { .. } => Category::Rec,
        }
    }

    /// Register source operands, in a stable order, padded with `None`.
    pub fn srcs(&self) -> [Option<Reg>; MAX_SRC_OPERANDS] {
        match *self {
            Instruction::Li { .. } | Instruction::Jump { .. } | Instruction::Halt => {
                [None, None, None]
            }
            Instruction::Alu { lhs, rhs, .. } | Instruction::Fpu { lhs, rhs, .. } => {
                [Some(lhs), Some(rhs), None]
            }
            Instruction::Alui { src, .. }
            | Instruction::FpuUn { src, .. }
            | Instruction::Cvt { src, .. } => [Some(src), None, None],
            Instruction::Fma { a, b, c, .. } => [Some(a), Some(b), Some(c)],
            Instruction::Load { base, .. } => [Some(base), None, None],
            Instruction::Store { src, base, .. } => [Some(src), Some(base), None],
            Instruction::Branch { lhs, rhs, .. } => [Some(lhs), Some(rhs), None],
            Instruction::Rcmp { base, .. } => [Some(base), None, None],
            Instruction::Rtn { .. } => [None, None, None],
            Instruction::Rec { srcs, .. } => srcs,
        }
    }

    /// Register destination operand, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instruction::Li { dst, .. }
            | Instruction::Alu { dst, .. }
            | Instruction::Alui { dst, .. }
            | Instruction::Fpu { dst, .. }
            | Instruction::FpuUn { dst, .. }
            | Instruction::Fma { dst, .. }
            | Instruction::Cvt { dst, .. }
            | Instruction::Load { dst, .. }
            | Instruction::Rcmp { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Returns `true` for instructions legal inside a recomputation slice
    /// body: pure register-to-register computation (§3.1.1 forbids memory
    /// and control flow inside slices; `RTN` terminates a slice).
    pub fn is_slice_compute(&self) -> bool {
        matches!(
            self,
            Instruction::Li { .. }
                | Instruction::Alu { .. }
                | Instruction::Alui { .. }
                | Instruction::Fpu { .. }
                | Instruction::FpuUn { .. }
                | Instruction::Fma { .. }
                | Instruction::Cvt { .. }
        )
    }

    /// Returns `true` for the amnesic-extension instructions.
    pub fn is_amnesic(&self) -> bool {
        matches!(
            self,
            Instruction::Rcmp { .. } | Instruction::Rtn { .. } | Instruction::Rec { .. }
        )
    }

    /// Returns `true` if this instruction may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::Jump { .. }
                | Instruction::Halt
                | Instruction::Rcmp { .. }
                | Instruction::Rtn { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Mul.apply(3, 7), 21);
        assert_eq!(AluOp::Div.apply(21, 7), 3);
        assert_eq!(AluOp::Div.apply(21, 0), u64::MAX);
        assert_eq!(AluOp::Rem.apply(22, 7), 1);
        assert_eq!(AluOp::Rem.apply(22, 0), 22);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift amount wraps mod 64");
        assert_eq!(AluOp::Shr.apply(4, 1), 2);
        assert_eq!(AluOp::Slt.apply(u64::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.apply(u64::MAX, 0), 0);
        assert_eq!(AluOp::Seq.apply(5, 5), 1);
        assert_eq!(AluOp::Min.apply(3, 9), 3);
        assert_eq!(AluOp::Max.apply(3, 9), 9);
    }

    #[test]
    fn fp_semantics() {
        let a = 2.5f64.to_bits();
        let b = 1.5f64.to_bits();
        assert_eq!(f64::from_bits(FpOp::Add.apply(a, b)), 4.0);
        assert_eq!(f64::from_bits(FpOp::Sub.apply(a, b)), 1.0);
        assert_eq!(f64::from_bits(FpOp::Mul.apply(a, b)), 3.75);
        assert_eq!(f64::from_bits(FpOp::Div.apply(a, b)), 2.5 / 1.5);
        assert_eq!(FpOp::Min.apply(a, b), b);
        assert_eq!(FpOp::Max.apply(a, b), a);
        assert_eq!(FpOp::Flt.apply(b, a), 1);
        assert_eq!(FpOp::Flt.apply(a, b), 0);
    }

    #[test]
    fn fp_unary_semantics() {
        let x = 4.0f64.to_bits();
        assert_eq!(f64::from_bits(FpUnOp::Sqrt.apply(x)), 2.0);
        assert_eq!(f64::from_bits(FpUnOp::Neg.apply(x)), -4.0);
        assert_eq!(f64::from_bits(FpUnOp::Abs.apply((-4.0f64).to_bits())), 4.0);
        assert!((f64::from_bits(FpUnOp::Exp.apply(0f64.to_bits())) - 1.0).abs() < 1e-12);
        assert!((f64::from_bits(FpUnOp::Ln.apply(1f64.to_bits()))).abs() < 1e-12);
    }

    #[test]
    fn cvt_semantics() {
        assert_eq!(f64::from_bits(CvtKind::I2F.apply(5)), 5.0);
        assert_eq!(CvtKind::F2I.apply(5.9f64.to_bits()), 5);
        assert_eq!(CvtKind::F2I.apply(f64::NAN.to_bits()), 0);
        assert_eq!(CvtKind::F2I.apply((-2.5f64).to_bits()) as i64, -2);
    }

    #[test]
    fn branch_cond_semantics() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lt.eval(u64::MAX, 0), "signed -1 < 0");
        assert!(BranchCond::Ge.eval(0, u64::MAX));
        assert!(BranchCond::Ltu.eval(0, u64::MAX));
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn categories() {
        assert_eq!(AluOp::Add.category(), Category::IntAlu);
        assert_eq!(AluOp::Mul.category(), Category::IntMul);
        assert_eq!(AluOp::Div.category(), Category::IntDiv);
        assert_eq!(FpOp::Mul.category(), Category::FpMul);
        assert_eq!(FpOp::Div.category(), Category::FpDiv);
        assert_eq!(FpUnOp::Sqrt.category(), Category::FpDiv);
        assert_eq!(FpUnOp::Neg.category(), Category::FpAdd);
        assert!(Category::Load.is_memory());
        assert!(Category::Store.is_memory());
        assert!(Category::Fma.is_non_mem());
        assert!(Category::Rec.is_non_mem());
    }

    #[test]
    fn operand_accessors() {
        let i = Instruction::Fma {
            dst: Reg(1),
            a: Reg(2),
            b: Reg(3),
            c: Reg(4),
        };
        assert_eq!(i.srcs(), [Some(Reg(2)), Some(Reg(3)), Some(Reg(4))]);
        assert_eq!(i.dst(), Some(Reg(1)));
        assert!(i.is_slice_compute());
        assert!(!i.is_control());

        let s = Instruction::Store {
            src: Reg(5),
            base: Reg(6),
            offset: -1,
        };
        assert_eq!(s.srcs(), [Some(Reg(5)), Some(Reg(6)), None]);
        assert_eq!(s.dst(), None);
        assert!(!s.is_slice_compute());

        let r = Instruction::Rcmp {
            dst: Reg(1),
            base: Reg(2),
            offset: 0,
            slice: SliceId(0),
        };
        assert!(r.is_amnesic());
        assert!(r.is_control());
        assert_eq!(r.dst(), Some(Reg(1)));
    }

    #[test]
    fn max_operand_bounds_hold_for_every_shape() {
        // The §3.4 analysis depends on max#src = 3, max#dest = 1. Spot-check
        // representative instructions of every variant.
        let insts = vec![
            Instruction::Li {
                dst: Reg(0),
                imm: 1,
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: Reg(2),
            },
            Instruction::Alui {
                op: AluOp::Add,
                dst: Reg(0),
                src: Reg(1),
                imm: 2,
            },
            Instruction::Fpu {
                op: FpOp::Add,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: Reg(2),
            },
            Instruction::FpuUn {
                op: FpUnOp::Sqrt,
                dst: Reg(0),
                src: Reg(1),
            },
            Instruction::Fma {
                dst: Reg(0),
                a: Reg(1),
                b: Reg(2),
                c: Reg(3),
            },
            Instruction::Cvt {
                kind: CvtKind::I2F,
                dst: Reg(0),
                src: Reg(1),
            },
            Instruction::Load {
                dst: Reg(0),
                base: Reg(1),
                offset: 0,
            },
            Instruction::Store {
                src: Reg(0),
                base: Reg(1),
                offset: 0,
            },
            Instruction::Branch {
                cond: BranchCond::Eq,
                lhs: Reg(0),
                rhs: Reg(1),
                target: 0,
            },
            Instruction::Jump { target: 0 },
            Instruction::Halt,
            Instruction::Rcmp {
                dst: Reg(0),
                base: Reg(1),
                offset: 0,
                slice: SliceId(0),
            },
            Instruction::Rtn { slice: SliceId(0) },
            Instruction::Rec {
                key: 0,
                srcs: [Some(Reg(1)), None, None],
            },
        ];
        for i in &insts {
            let n_src = i.srcs().iter().filter(|s| s.is_some()).count();
            assert!(n_src <= MAX_SRC_OPERANDS, "{i:?}");
            let n_dst = usize::from(i.dst().is_some());
            assert!(n_dst <= MAX_DEST_OPERANDS, "{i:?}");
        }
    }
}
