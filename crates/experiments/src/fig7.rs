//! Fig. 7: share of RSlices with non-recomputable leaf inputs, and the
//! accompanying `Hist` sizing analysis (§5.4).

use crate::pipeline::EvalSuite;
use crate::report::Table;

/// Renders the paper's Fig. 7 as a table, plus observed `Hist` occupancy
/// against the ≤600-entry design point the paper derives.
pub fn render(suite: &EvalSuite) -> String {
    let mut t = Table::new(&["bench", "slices", "w/ nc %", "w/o nc %", "Hist high-water"]);
    let mut worst_hist = 0usize;
    for bench in &suite.benches {
        let total = bench.prob_binary.slices.len();
        let with_nc = bench
            .prob_binary
            .slices
            .iter()
            .filter(|s| s.has_nonrecomputable)
            .count();
        let hist_hw = bench
            .runs
            .iter()
            .map(|(_, r)| r.stats.hist_high_water)
            .max()
            .unwrap_or(0);
        worst_hist = worst_hist.max(hist_hw);
        let (w, wo) = if total == 0 {
            (0.0, 0.0)
        } else {
            (
                100.0 * with_nc as f64 / total as f64,
                100.0 * (total - with_nc) as f64 / total as f64,
            )
        };
        t.row(vec![
            bench.name.to_string(),
            total.to_string(),
            format!("{w:.1}"),
            format!("{wo:.1}"),
            hist_hw.to_string(),
        ]);
    }
    format!(
        "Fig. 7: RSlices with non-recomputable (nc) leaf inputs\n\n{}\n\
         Worst-case Hist occupancy observed: {} entries \
         (paper sizes Hist at no more than 600 entries)\n",
        t.render(),
        worst_hist
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BenchEval;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn shares_sum_to_100_for_annotated_binaries() {
        let suite = EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        let text = render(&suite);
        assert!(text.contains("w/ nc"));
        assert!(text.contains("Hist"));
    }
}
