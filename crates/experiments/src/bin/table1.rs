//! Regenerates the paper's Table 1.
fn main() {
    println!("{}", amnesiac_experiments::table1::render());
}
