#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-bench
//!
//! Hand-rolled benchmark harness (no external dependencies). Each bench
//! target regenerates one of the paper's tables or figures (at test scale,
//! so `cargo bench` stays minutes, not hours) and measures the stages of
//! the amnesic pipeline:
//!
//! * `paper_artifacts` — one benchmark per paper artifact (Table 1,
//!   Figs. 3–8, Tables 4–6): the cost of producing each result.
//! * `pipeline_stages` — profiling, compilation, classic execution, and
//!   amnesic execution per policy, on representative kernels.
//!
//! The *numbers the paper reports* are produced by the
//! `amnesiac-experiments` binaries (`cargo run --release -p
//! amnesiac-experiments --bin all`); these benches track the harness's own
//! performance and act as end-to-end smoke tests under `cargo bench`.
//! For the committed perf trajectory see `amnesiac bench-snapshot`
//! (`BENCH_seed.json` at the repository root).

use std::time::Instant;

use amnesiac_telemetry::Json;

/// One measured benchmark: name plus per-iteration wall time statistics.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (e.g. `"fig3_edp_gains"`).
    pub name: String,
    /// Iterations measured (after warmup).
    pub iterations: u32,
    /// Minimum per-iteration time, milliseconds.
    pub min_ms: f64,
    /// Mean per-iteration time, milliseconds.
    pub mean_ms: f64,
    /// Maximum per-iteration time, milliseconds.
    pub max_ms: f64,
}

impl Measurement {
    /// Renders as a JSON object (`name`, `iterations`, `min_ms`, …).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("iterations", u64::from(self.iterations))
            .with("min_ms", self.min_ms)
            .with("mean_ms", self.mean_ms)
            .with("max_ms", self.max_ms)
    }
}

/// A minimal fixed-iteration benchmark runner: one warmup pass, then
/// `iterations` timed passes. Results print criterion-style and are kept
/// for an optional JSON dump at the end of the target.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u32,
    results: Vec<Measurement>,
}

impl Bencher {
    /// Creates a runner measuring `iterations` timed passes per benchmark.
    pub fn new(iterations: u32) -> Self {
        Bencher {
            iterations: iterations.max(1),
            results: Vec::new(),
        }
    }

    /// Times `f`, discarding its output via [`std::hint::black_box`].
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warmup (and lazy-init amortization)
        let mut min_ms = f64::INFINITY;
        let mut max_ms: f64 = 0.0;
        let mut total_ms = 0.0;
        for _ in 0..self.iterations {
            let start = Instant::now();
            std::hint::black_box(f());
            let ms = start.elapsed().as_secs_f64() * 1e3;
            min_ms = min_ms.min(ms);
            max_ms = max_ms.max(ms);
            total_ms += ms;
        }
        let m = Measurement {
            name: name.to_string(),
            iterations: self.iterations,
            min_ms,
            mean_ms: total_ms / f64::from(self.iterations),
            max_ms,
        };
        println!(
            "{:<40} {:>10.3} ms/iter (min {:.3}, max {:.3}, {} iters)",
            m.name, m.mean_ms, m.min_ms, m.max_ms, m.iterations
        );
        self.results.push(m);
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// All measurements as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.results.iter().map(Measurement::to_json).collect())
    }

    /// Writes the measurements to `path` as pretty JSON (the benches do
    /// this when the `AMNESIAC_BENCH_JSON` environment variable names a
    /// destination file).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_measurements() {
        let mut b = Bencher::new(3);
        b.bench("spin", || (0..1000u64).sum::<u64>());
        let m = &b.results()[0];
        assert_eq!(m.iterations, 3);
        assert!(m.min_ms <= m.mean_ms && m.mean_ms <= m.max_ms);
        assert!(m.min_ms >= 0.0);
        let json = b.to_json();
        assert_eq!(json.as_arr().map(|a| a.len()), Some(1));
    }
}
