//! Pure functional semantics of compute instructions, shared by the classic
//! core, the profiler's replay validation, and the amnesic slice traversal.

use amnesiac_isa::{AluOp, DecodedInst, DecodedOp, Instruction};

/// Architectural exceptions a compute instruction can raise.
///
/// Under amnesic execution these are *recorded* during slice traversal and
/// handled after `RTN`, mirroring the paper's §2.3 deferred-exception
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A floating-point operation produced NaN from non-NaN inputs.
    FpInvalid,
}

/// Evaluates a compute instruction given its source operand *values* in
/// [`Instruction::srcs`] order. Positions without a register operand are
/// ignored.
///
/// # Panics
///
/// Panics if `inst` is not a compute instruction
/// ([`Instruction::is_slice_compute`] is `false`).
pub fn eval_compute(inst: &Instruction, srcs: [u64; 3]) -> u64 {
    match inst {
        Instruction::Li { imm, .. } => *imm,
        Instruction::Alu { op, .. } => op.apply(srcs[0], srcs[1]),
        Instruction::Alui { op, imm, .. } => op.apply(srcs[0], *imm),
        Instruction::Fpu { op, .. } => op.apply(srcs[0], srcs[1]),
        Instruction::FpuUn { op, .. } => op.apply(srcs[0]),
        Instruction::Fma { .. } => {
            let a = f64::from_bits(srcs[0]);
            let b = f64::from_bits(srcs[1]);
            let c = f64::from_bits(srcs[2]);
            a.mul_add(b, c).to_bits()
        }
        Instruction::Cvt { kind, .. } => kind.apply(srcs[0]),
        other => panic!("eval_compute on non-compute instruction {other}"),
    }
}

/// Checks whether executing `inst` on `srcs` raises an exception.
pub fn compute_exception(inst: &Instruction, srcs: [u64; 3]) -> Option<ExceptionKind> {
    match inst {
        Instruction::Alu {
            op: AluOp::Div | AluOp::Rem,
            ..
        } if srcs[1] == 0 => Some(ExceptionKind::DivideByZero),
        Instruction::Alui {
            op: AluOp::Div | AluOp::Rem,
            imm: 0,
            ..
        } => Some(ExceptionKind::DivideByZero),
        Instruction::Fpu { .. } | Instruction::FpuUn { .. } | Instruction::Fma { .. } => {
            let out = f64::from_bits(eval_compute(inst, srcs));
            let in_nan = inst
                .srcs()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .any(|(i, _)| f64::from_bits(srcs[i]).is_nan());
            if out.is_nan() && !in_nan {
                Some(ExceptionKind::FpInvalid)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Decoded twin of [`compute_exception`]: same semantics, but dispatches on
/// the predecoded stream and reads the pre-resolved source array instead of
/// re-deriving it with [`Instruction::srcs`] on every check.
#[inline]
pub fn decoded_exception(inst: &DecodedInst, srcs: [u64; 3]) -> Option<ExceptionKind> {
    match inst.op {
        DecodedOp::Alu {
            op: AluOp::Div | AluOp::Rem,
        } if srcs[1] == 0 => Some(ExceptionKind::DivideByZero),
        DecodedOp::Alui {
            op: AluOp::Div | AluOp::Rem,
            imm: 0,
        } => Some(ExceptionKind::DivideByZero),
        DecodedOp::Fpu { .. } | DecodedOp::FpuUn { .. } | DecodedOp::Fma => {
            let out = f64::from_bits(inst.eval_compute(srcs));
            let in_nan = inst
                .srcs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .any(|(i, _)| f64::from_bits(srcs[i]).is_nan());
            if out.is_nan() && !in_nan {
                Some(ExceptionKind::FpInvalid)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{CvtKind, FpOp, FpUnOp, Reg};

    #[test]
    fn eval_covers_all_compute_shapes() {
        let r = Reg(0);
        assert_eq!(eval_compute(&Instruction::Li { dst: r, imm: 7 }, [0; 3]), 7);
        assert_eq!(
            eval_compute(
                &Instruction::Alu {
                    op: AluOp::Add,
                    dst: r,
                    lhs: r,
                    rhs: r
                },
                [2, 3, 0]
            ),
            5
        );
        assert_eq!(
            eval_compute(
                &Instruction::Alui {
                    op: AluOp::Mul,
                    dst: r,
                    src: r,
                    imm: 10
                },
                [4, 0, 0]
            ),
            40
        );
        let x = 1.5f64.to_bits();
        assert_eq!(
            f64::from_bits(eval_compute(
                &Instruction::Fpu {
                    op: FpOp::Add,
                    dst: r,
                    lhs: r,
                    rhs: r
                },
                [x, x, 0]
            )),
            3.0
        );
        assert_eq!(
            f64::from_bits(eval_compute(
                &Instruction::FpuUn {
                    op: FpUnOp::Sqrt,
                    dst: r,
                    src: r
                },
                [4.0f64.to_bits(), 0, 0]
            )),
            2.0
        );
        assert_eq!(
            f64::from_bits(eval_compute(
                &Instruction::Fma {
                    dst: r,
                    a: r,
                    b: r,
                    c: r
                },
                [2.0f64.to_bits(), 3.0f64.to_bits(), 1.0f64.to_bits()]
            )),
            7.0
        );
        assert_eq!(
            eval_compute(
                &Instruction::Cvt {
                    kind: CvtKind::F2I,
                    dst: r,
                    src: r
                },
                [9.75f64.to_bits(), 0, 0]
            ),
            9
        );
    }

    #[test]
    fn fma_is_fused_not_separate() {
        // mul_add differs from a*b+c in the last ulp for some inputs; verify
        // we use the fused form.
        let a = 3.0f64;
        let b = 1.0f64 / 3.0;
        let fused = a.mul_add(b, -1.0);
        let unfused = a * b - 1.0;
        assert_ne!(fused, unfused, "pick inputs where fusion matters");
        let r = Reg(0);
        let got = f64::from_bits(eval_compute(
            &Instruction::Fma {
                dst: r,
                a: r,
                b: r,
                c: r,
            },
            [a.to_bits(), b.to_bits(), (-1.0f64).to_bits()],
        ));
        assert_eq!(got, fused);
    }

    #[test]
    fn divide_by_zero_raises() {
        let r = Reg(0);
        let div = Instruction::Alu {
            op: AluOp::Div,
            dst: r,
            lhs: r,
            rhs: r,
        };
        assert_eq!(
            compute_exception(&div, [5, 0, 0]),
            Some(ExceptionKind::DivideByZero)
        );
        assert_eq!(compute_exception(&div, [5, 2, 0]), None);
        let remi = Instruction::Alui {
            op: AluOp::Rem,
            dst: r,
            src: r,
            imm: 0,
        };
        assert_eq!(
            compute_exception(&remi, [5, 0, 0]),
            Some(ExceptionKind::DivideByZero)
        );
    }

    #[test]
    fn fp_invalid_raises_only_on_fresh_nan() {
        let r = Reg(0);
        let sub = Instruction::Fpu {
            op: FpOp::Sub,
            dst: r,
            lhs: r,
            rhs: r,
        };
        let inf = f64::INFINITY.to_bits();
        assert_eq!(
            compute_exception(&sub, [inf, inf, 0]),
            Some(ExceptionKind::FpInvalid)
        );
        // NaN in, NaN out: not a fresh exception
        let nan = f64::NAN.to_bits();
        assert_eq!(compute_exception(&sub, [nan, inf, 0]), None);
        // ordinary arithmetic: no exception
        assert_eq!(
            compute_exception(&sub, [1.0f64.to_bits(), 2.0f64.to_bits(), 0]),
            None
        );
    }

    #[test]
    fn decoded_exception_agrees_with_enum_path() {
        let r = Reg(0);
        let cases = [
            (
                Instruction::Alu {
                    op: AluOp::Div,
                    dst: r,
                    lhs: r,
                    rhs: r,
                },
                [5, 0, 0],
            ),
            (
                Instruction::Alui {
                    op: AluOp::Rem,
                    dst: r,
                    src: r,
                    imm: 0,
                },
                [5, 0, 0],
            ),
            (
                Instruction::Fpu {
                    op: FpOp::Sub,
                    dst: r,
                    lhs: r,
                    rhs: r,
                },
                [f64::INFINITY.to_bits(), f64::INFINITY.to_bits(), 0],
            ),
            (
                Instruction::Fpu {
                    op: FpOp::Sub,
                    dst: r,
                    lhs: r,
                    rhs: r,
                },
                [f64::NAN.to_bits(), f64::INFINITY.to_bits(), 0],
            ),
            (Instruction::Li { dst: r, imm: 3 }, [0, 0, 0]),
        ];
        for (inst, srcs) in cases {
            let decoded = DecodedInst::from_inst(&inst);
            assert_eq!(
                decoded_exception(&decoded, srcs),
                compute_exception(&inst, srcs),
                "{inst:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-compute")]
    fn eval_rejects_memory_instructions() {
        eval_compute(
            &Instruction::Load {
                dst: Reg(0),
                base: Reg(1),
                offset: 0,
            },
            [0; 3],
        );
    }
}
