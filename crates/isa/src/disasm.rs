//! Human-readable disassembly of instructions and programs.

use std::fmt;

use crate::inst::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp, Instruction};
use crate::program::Program;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
            FpOp::Flt => "flt",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FpUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FpUnOp::Sqrt => "fsqrt",
            FpUnOp::Neg => "fneg",
            FpUnOp::Abs => "fabs",
            FpUnOp::Exp => "fexp",
            FpUnOp::Ln => "fln",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Li { dst, imm } => write!(f, "li {dst}, {imm:#x}"),
            Instruction::Alu { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Instruction::Alui { op, dst, src, imm } => {
                write!(f, "{op}i {dst}, {src}, {imm:#x}")
            }
            Instruction::Fpu { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Instruction::FpuUn { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Instruction::Fma { dst, a, b, c } => write!(f, "fma {dst}, {a}, {b}, {c}"),
            Instruction::Cvt {
                kind: CvtKind::I2F,
                dst,
                src,
            } => write!(f, "i2f {dst}, {src}"),
            Instruction::Cvt {
                kind: CvtKind::F2I,
                dst,
                src,
            } => write!(f, "f2i {dst}, {src}"),
            Instruction::Load { dst, base, offset } => {
                write!(f, "ld {dst}, [{base}{offset:+}]")
            }
            Instruction::Store { src, base, offset } => {
                write!(f, "st {src}, [{base}{offset:+}]")
            }
            Instruction::Branch {
                cond,
                lhs,
                rhs,
                target,
            } => {
                write!(f, "{cond} {lhs}, {rhs}, @{target}")
            }
            Instruction::Jump { target } => write!(f, "j @{target}"),
            Instruction::Halt => write!(f, "halt"),
            Instruction::Rcmp {
                dst,
                base,
                offset,
                slice,
            } => {
                write!(f, "rcmp {dst}, [{base}{offset:+}], {slice}")
            }
            Instruction::Rtn { slice } => write!(f, "rtn {slice}"),
            Instruction::Rec { key, srcs } => {
                write!(f, "rec @{key}")?;
                for s in srcs.iter().flatten() {
                    write!(f, ", {s}")?;
                }
                Ok(())
            }
        }
    }
}

/// Renders a full program listing, marking slice-body boundaries.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "; program `{}`", program.name);
    for (pc, inst) in program.instructions.iter().enumerate() {
        if pc == program.code_len && !program.slices.is_empty() {
            let _ = writeln!(out, "; ---- slice bodies ----");
        }
        for meta in &program.slices {
            if meta.entry == pc {
                let _ = writeln!(
                    out,
                    "; {} for rcmp@{} ({} insts, E_rc≈{:.2}nJ, E_ld≈{:.2}nJ)",
                    meta.id, meta.rcmp_pc, meta.len, meta.est_recompute_nj, meta.est_load_nj
                );
            }
        }
        let _ = writeln!(out, "{pc:6}: {inst}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SliceId;
    use crate::Reg;

    #[test]
    fn instruction_rendering() {
        let cases: Vec<(Instruction, &str)> = vec![
            (
                Instruction::Li {
                    dst: Reg(1),
                    imm: 16,
                },
                "li r1, 0x10",
            ),
            (
                Instruction::Alu {
                    op: AluOp::Add,
                    dst: Reg(1),
                    lhs: Reg(2),
                    rhs: Reg(3),
                },
                "add r1, r2, r3",
            ),
            (
                Instruction::Load {
                    dst: Reg(4),
                    base: Reg(5),
                    offset: -2,
                },
                "ld r4, [r5-2]",
            ),
            (
                Instruction::Store {
                    src: Reg(4),
                    base: Reg(5),
                    offset: 3,
                },
                "st r4, [r5+3]",
            ),
            (
                Instruction::Branch {
                    cond: BranchCond::Ne,
                    lhs: Reg(1),
                    rhs: Reg(0),
                    target: 12,
                },
                "bne r1, r0, @12",
            ),
            (Instruction::Halt, "halt"),
            (
                Instruction::Rcmp {
                    dst: Reg(2),
                    base: Reg(1),
                    offset: 0,
                    slice: SliceId(3),
                },
                "rcmp r2, [r1+0], slice3",
            ),
            (Instruction::Rtn { slice: SliceId(3) }, "rtn slice3"),
            (
                Instruction::Rec {
                    key: 2,
                    srcs: [Some(Reg(7)), None, None],
                },
                "rec @2, r7",
            ),
        ];
        for (inst, expected) in cases {
            assert_eq!(inst.to_string(), expected);
        }
    }

    #[test]
    fn program_listing_contains_every_pc() {
        let mut p = Program::new("demo");
        p.instructions = vec![
            Instruction::Li {
                dst: Reg(1),
                imm: 1,
            },
            Instruction::Halt,
        ];
        p.code_len = 2;
        let text = disassemble(&p);
        assert!(text.contains("program `demo`"));
        assert!(text.contains("0: li r1, 0x1"));
        assert!(text.contains("1: halt"));
    }
}
