//! A history-based miss predictor — the refinement the paper's §3.3.1
//! leaves to future work: "Better amnesic policies can be devised by using
//! more accurate (miss) predictors, which can also help eliminate the
//! probing overhead."
//!
//! Each static `RCMP` gets a 2-bit saturating counter trained on the true
//! residency of its dynamic instances. A predicted L1 miss fires
//! recomputation *without probing the caches*; a predicted hit performs
//! the load. Mispredictions cost either a wasted recomputation
//! (false positive) or a lost opportunity (false negative) — never
//! correctness, since the value is recomputed or loaded exactly as under
//! the other policies.

use amnesiac_mem::FastMap;

/// Per-site 2-bit saturating miss predictor.
#[derive(Debug, Clone, Default)]
pub struct MissPredictor {
    counters: FastMap<usize, u8>,
    predictions: u64,
    mispredictions: u64,
}

/// Counter value at and above which a miss is predicted.
const TAKEN_THRESHOLD: u8 = 2;
/// Saturation limit of the 2-bit counter.
const MAX_COUNT: u8 = 3;
/// Initial counter value: weakly predict-miss, so cold sites behave like
/// the `Compiler` policy until trained.
const INITIAL: u8 = 2;

impl MissPredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicts whether the `RCMP` at `pc` will miss L1.
    pub fn predict_miss(&mut self, pc: usize) -> bool {
        self.predictions += 1;
        *self.counters.entry(pc).or_insert(INITIAL) >= TAKEN_THRESHOLD
    }

    /// Trains the counter with the observed outcome. Call after every
    /// decision, whichever way it went.
    pub fn train(&mut self, pc: usize, missed: bool) {
        let counter = self.counters.entry(pc).or_insert(INITIAL);
        let predicted = *counter >= TAKEN_THRESHOLD;
        if predicted != missed {
            self.mispredictions += 1;
        }
        *counter = if missed {
            (*counter + 1).min(MAX_COUNT)
        } else {
            counter.saturating_sub(1)
        };
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Predictions that disagreed with the observed outcome.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_sites_predict_miss() {
        let mut p = MissPredictor::new();
        assert!(p.predict_miss(10), "weakly-miss initial state");
    }

    #[test]
    fn counters_saturate_and_flip() {
        let mut p = MissPredictor::new();
        // train toward hit
        for _ in 0..4 {
            p.train(10, false);
        }
        assert!(!p.predict_miss(10));
        // one miss does not flip a saturated hit-state immediately…
        p.train(10, true);
        assert!(!p.predict_miss(10));
        // …but two do
        p.train(10, true);
        assert!(p.predict_miss(10));
    }

    #[test]
    fn misprediction_rate_tracks_disagreements() {
        let mut p = MissPredictor::new();
        p.predict_miss(1);
        p.train(1, false); // predicted miss (initial 2), was hit → mispredict
        p.predict_miss(1);
        p.train(1, false); // counter now 1 → predicted hit, was hit → correct
        assert_eq!(p.mispredictions(), 1);
        assert_eq!(p.predictions(), 2);
        assert!((p.misprediction_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sites_are_independent() {
        let mut p = MissPredictor::new();
        for _ in 0..4 {
            p.train(1, false);
            p.train(2, true);
        }
        assert!(!p.predict_miss(1));
        assert!(p.predict_miss(2));
    }
}
