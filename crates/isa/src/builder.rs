//! A small label-based assembler DSL for constructing [`Program`]s.

use crate::inst::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp, Instruction};
use crate::program::{DataImage, MemRange, Program};
use crate::validate;
use crate::{IsaError, Reg};

/// A forward-referencable code label issued by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

/// Builder for classic (un-annotated) programs.
///
/// Data memory is allocated linearly from word address `DATA_BASE` upward so
/// that kernels get deterministic, non-overlapping layouts.
///
/// ```
/// use amnesiac_isa::{ProgramBuilder, Reg, AluOp, BranchCond};
///
/// # fn main() -> Result<(), amnesiac_isa::IsaError> {
/// // sum the first 4 naturals into memory
/// let mut b = ProgramBuilder::new("sum");
/// let out = b.alloc_zeroed(1);
/// b.li(Reg(1), 0);         // acc
/// b.li(Reg(2), 0);         // i
/// b.li(Reg(3), 4);         // n
/// let top = b.label();
/// let done = b.label();
/// b.bind(top)?;
/// b.branch(BranchCond::Geu, Reg(2), Reg(3), done);
/// b.alu(AluOp::Add, Reg(1), Reg(1), Reg(2));
/// b.alui(AluOp::Add, Reg(2), Reg(2), 1);
/// b.jump(top);
/// b.bind(done)?;
/// b.li(Reg(4), out);
/// b.store(Reg(1), Reg(4), 0);
/// b.halt();
/// let p = b.finish()?;
/// assert_eq!(p.name, "sum");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Instruction>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
    data: DataImage,
    next_data: u64,
    output: Vec<MemRange>,
    read_only: Vec<MemRange>,
}

/// First word address handed out by the data allocator.
pub const DATA_BASE: u64 = 0x1000;

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            data: DataImage::new(),
            next_data: DATA_BASE,
            output: Vec::new(),
            read_only: Vec::new(),
        }
    }

    /// Current program counter (index of the next emitted instruction).
    pub fn pc(&self) -> usize {
        self.insts.len()
    }

    /// Issues a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current pc.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RebindLabel`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), IsaError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(IsaError::RebindLabel { label: label.0 });
        }
        *slot = Some(self.insts.len());
        Ok(())
    }

    // ---- data segment ------------------------------------------------

    /// Allocates and initialises `values.len()` words; returns the base
    /// word address.
    pub fn alloc_data(&mut self, values: &[u64]) -> u64 {
        let base = self.next_data;
        for (i, &v) in values.iter().enumerate() {
            self.data.set(base + i as u64, v);
        }
        self.next_data += values.len() as u64;
        base
    }

    /// Allocates and initialises words from `f64` values (bit patterns).
    pub fn alloc_f64(&mut self, values: &[f64]) -> u64 {
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.alloc_data(&bits)
    }

    /// Allocates `len` zero-initialised words; returns the base address.
    pub fn alloc_zeroed(&mut self, len: u64) -> u64 {
        let base = self.next_data;
        for i in 0..len {
            self.data.set(base + i, 0);
        }
        self.next_data += len;
        base
    }

    /// Marks `[start, start+len)` as observable program output.
    pub fn mark_output(&mut self, start: u64, len: u64) {
        self.output.push(MemRange::new(start, len));
    }

    /// Marks `[start, start+len)` as read-only program input (§2.2:
    /// non-recomputable by definition).
    pub fn mark_read_only(&mut self, start: u64, len: u64) {
        self.read_only.push(MemRange::new(start, len));
    }

    // ---- instruction emission ----------------------------------------

    /// Emits a raw instruction and returns its pc.
    pub fn emit(&mut self, inst: Instruction) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// `dst ← imm`.
    pub fn li(&mut self, dst: Reg, imm: u64) -> usize {
        self.emit(Instruction::Li { dst, imm })
    }

    /// `dst ← imm` where `imm` is an `f64`.
    pub fn lfi(&mut self, dst: Reg, imm: f64) -> usize {
        self.emit(Instruction::Li {
            dst,
            imm: imm.to_bits(),
        })
    }

    /// Register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, dst: Reg, lhs: Reg, rhs: Reg) -> usize {
        self.emit(Instruction::Alu { op, dst, lhs, rhs })
    }

    /// Register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, dst: Reg, src: Reg, imm: u64) -> usize {
        self.emit(Instruction::Alui { op, dst, src, imm })
    }

    /// Register-register FP operation.
    pub fn fpu(&mut self, op: FpOp, dst: Reg, lhs: Reg, rhs: Reg) -> usize {
        self.emit(Instruction::Fpu { op, dst, lhs, rhs })
    }

    /// Unary FP operation.
    pub fn fpu_un(&mut self, op: FpUnOp, dst: Reg, src: Reg) -> usize {
        self.emit(Instruction::FpuUn { op, dst, src })
    }

    /// Fused multiply-add `dst ← a·b + c`.
    pub fn fma(&mut self, dst: Reg, a: Reg, b: Reg, c: Reg) -> usize {
        self.emit(Instruction::Fma { dst, a, b, c })
    }

    /// Int/FP conversion.
    pub fn cvt(&mut self, kind: CvtKind, dst: Reg, src: Reg) -> usize {
        self.emit(Instruction::Cvt { kind, dst, src })
    }

    /// `dst ← mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> usize {
        self.emit(Instruction::Load { dst, base, offset })
    }

    /// `mem[base + offset] ← src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> usize {
        self.emit(Instruction::Store { src, base, offset })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, lhs: Reg, rhs: Reg, label: Label) -> usize {
        let pc = self.emit(Instruction::Branch {
            cond,
            lhs,
            rhs,
            target: usize::MAX,
        });
        self.fixups.push((pc, label));
        pc
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> usize {
        let pc = self.emit(Instruction::Jump { target: usize::MAX });
        self.fixups.push((pc, label));
        pc
    }

    /// Terminates the program.
    pub fn halt(&mut self) -> usize {
        self.emit(Instruction::Halt)
    }

    /// Patches label fixups, validates, and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if a referenced label was never
    /// bound, or any validation error from [`validate::validate`].
    pub fn finish(self) -> Result<Program, IsaError> {
        let ProgramBuilder {
            name,
            mut insts,
            labels,
            fixups,
            data,
            output,
            read_only,
            ..
        } = self;
        for (pc, label) in fixups {
            let target = labels[label.0].ok_or(IsaError::UnboundLabel { label: label.0 })?;
            match &mut insts[pc] {
                Instruction::Branch { target: t, .. } | Instruction::Jump { target: t } => {
                    *t = target;
                }
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        let code_len = insts.len();
        let program = Program {
            name,
            instructions: insts,
            code_len,
            entry: 0,
            slices: Vec::new(),
            data,
            output,
            read_only,
        };
        validate::validate(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_program() {
        let mut b = ProgramBuilder::new("t");
        let base = b.alloc_data(&[7, 8]);
        assert_eq!(base, DATA_BASE);
        let second = b.alloc_zeroed(3);
        assert_eq!(second, DATA_BASE + 2, "allocations are contiguous");
        b.li(Reg(1), base);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.code_len, 3);
        assert_eq!(p.data.get(base), 7);
        assert_eq!(p.data.get(base + 1), 8);
        assert_eq!(p.data.get(second + 2), 0);
        assert!(p.data.is_initialized(second + 2));
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut b = ProgramBuilder::new("t");
        let top = b.label();
        let end = b.label();
        b.bind(top).unwrap();
        b.li(Reg(1), 0);
        b.branch(BranchCond::Eq, Reg(1), Reg(1), end); // forward
        b.jump(top); // backward
        b.bind(end).unwrap();
        b.halt();
        let p = b.finish().unwrap();
        match p.instructions[1] {
            Instruction::Branch { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.instructions[2] {
            Instruction::Jump { target } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.jump(l);
        b.halt();
        assert_eq!(b.finish().unwrap_err(), IsaError::UnboundLabel { label: 0 });
    }

    #[test]
    fn rebinding_a_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.bind(l).unwrap();
        assert_eq!(b.bind(l).unwrap_err(), IsaError::RebindLabel { label: 0 });
    }

    #[test]
    fn missing_halt_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg(1), 1);
        assert_eq!(b.finish().unwrap_err(), IsaError::MissingHalt);
    }

    #[test]
    fn f64_allocation_roundtrips() {
        let mut b = ProgramBuilder::new("t");
        let base = b.alloc_f64(&[1.5, -2.25]);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(f64::from_bits(p.data.get(base)), 1.5);
        assert_eq!(f64::from_bits(p.data.get(base + 1)), -2.25);
    }

    #[test]
    fn output_and_read_only_marks() {
        let mut b = ProgramBuilder::new("t");
        let input = b.alloc_data(&[1, 2, 3]);
        let out = b.alloc_zeroed(2);
        b.mark_read_only(input, 3);
        b.mark_output(out, 2);
        b.halt();
        let p = b.finish().unwrap();
        assert!(p.is_read_only(input + 2));
        assert!(!p.is_read_only(out));
        assert_eq!(p.output, vec![MemRange::new(out, 2)]);
    }
}
