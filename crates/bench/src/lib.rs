#![warn(missing_docs)]

//! # amnesiac-bench
//!
//! Criterion benchmark harness. Each bench target regenerates one of the
//! paper's tables or figures (at test scale, so `cargo bench` stays
//! minutes, not hours) and measures the stages of the amnesic pipeline:
//!
//! * `paper_artifacts` — one benchmark per paper artifact (Table 1,
//!   Figs. 3–8, Tables 4–6): the cost of producing each result.
//! * `pipeline_stages` — profiling, compilation, classic execution, and
//!   amnesic execution per policy, on representative kernels.
//!
//! The *numbers the paper reports* are produced by the
//! `amnesiac-experiments` binaries (`cargo run --release -p
//! amnesiac-experiments --bin all`); these benches track the harness's own
//! performance and act as end-to-end smoke tests under `cargo bench`.
