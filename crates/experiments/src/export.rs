//! Machine-readable twins of the paper artifacts.
//!
//! Every table/figure driver in this crate renders plain text for the
//! terminal; the emitters here produce the same numbers as JSON so results
//! can be diffed, plotted, and regression-checked by tooling. The schema
//! follows the telemetry conventions: ordered objects, `*_pct`/`*_nj`/
//! `*_ms` unit suffixes, non-finite floats as `null`.

use std::io;
use std::path::{Path, PathBuf};

use amnesiac_mem::ServiceLevel;
use amnesiac_telemetry::{Json, JsonSink, ToJson};
use amnesiac_workloads::{all_workloads, Scale, Suite};

use crate::pipeline::{BenchEval, EvalSuite, PolicyOutcome};
use crate::table6;

fn gains_json(
    suite: &EvalSuite,
    artifact: &str,
    metric: &str,
    gain: impl Fn(&BenchEval, PolicyOutcome) -> f64,
) -> Json {
    let mut benches = Json::obj();
    for bench in &suite.benches {
        let mut per_policy = Json::obj();
        for &p in &PolicyOutcome::ALL {
            per_policy.set(p.label(), gain(bench, p));
        }
        benches.set(bench.name, per_policy);
    }
    Json::obj()
        .with("artifact", artifact)
        .with("metric", metric)
        .with("benches", benches)
}

/// Fig. 3 twin: % EDP gain per benchmark and policy.
pub fn fig3_json(suite: &EvalSuite) -> Json {
    gains_json(suite, "fig3", "edp_gain_pct", BenchEval::edp_gain)
}

/// Fig. 4 twin: % energy gain per benchmark and policy.
pub fn fig4_json(suite: &EvalSuite) -> Json {
    gains_json(suite, "fig4", "energy_gain_pct", BenchEval::energy_gain)
}

/// Fig. 5 twin: % execution-time gain per benchmark and policy.
pub fn fig5_json(suite: &EvalSuite) -> Json {
    gains_json(suite, "fig5", "time_gain_pct", BenchEval::time_gain)
}

/// Table 1 twin: communication vs computation energy across nodes.
pub fn table1_json() -> Json {
    let model = amnesiac_energy::TechnologyModel::paper();
    let labels = ["40nm", "10nm_hp", "10nm_lp"];
    let mut nodes = Json::obj();
    for (label, point) in labels.iter().zip(model.table1()) {
        nodes.set(
            label,
            Json::obj()
                .with("voltage_v", point.voltage)
                .with("load_over_fma", point.ratio),
        );
    }
    Json::obj().with("artifact", "table1").with("nodes", nodes)
}

/// Table 2 twin: the 33-kernel deployment at paper scale.
pub fn table2_json() -> Json {
    let mut benches = Json::Arr(Vec::new());
    if let Json::Arr(rows) = &mut benches {
        for w in all_workloads(Scale::Paper) {
            let suite = match w.suite {
                Suite::Spec => "SPEC",
                Suite::Nas => "NAS",
                Suite::Parsec => "PARSEC",
                Suite::Rodinia => "Rodinia",
                Suite::Control => "control",
            };
            rows.push(
                Json::obj()
                    .with("name", w.name)
                    .with("suite", suite)
                    .with("static_insts", w.program.code_len)
                    .with("data_words", w.program.data.len()),
            );
        }
    }
    Json::obj()
        .with("artifact", "table2")
        .with("benches", benches)
}

/// Table 4 twin: dynamic instruction mix and energy breakdown (Compiler
/// policy vs classic), per benchmark.
pub fn table4_json(suite: &EvalSuite) -> Json {
    let mut benches = Json::obj();
    for bench in &suite.benches {
        let amnesic = bench.run(PolicyOutcome::Compiler);
        let inst_increase = 100.0
            * (amnesic.run.instructions as f64 / bench.classic.instructions.max(1) as f64 - 1.0);
        let load_decrease =
            100.0 * (1.0 - amnesic.run.loads as f64 / bench.classic.loads.max(1) as f64);
        benches.set(
            bench.name,
            Json::obj()
                .with("inst_increase_pct", inst_increase)
                .with("load_decrease_pct", load_decrease)
                .with(
                    "classic_breakdown",
                    bench.classic.account.breakdown().to_json(),
                )
                .with(
                    "amnesic_breakdown",
                    amnesic.run.account.breakdown().to_json(),
                ),
        );
    }
    Json::obj()
        .with("artifact", "table4")
        .with("benches", benches)
}

/// Table 5 twin: residency profile of swapped loads under the Compiler,
/// FLC, and LLC policies.
pub fn table5_json(suite: &EvalSuite) -> Json {
    const POLICIES: [PolicyOutcome; 3] = [
        PolicyOutcome::Compiler,
        PolicyOutcome::Flc,
        PolicyOutcome::Llc,
    ];
    let mut benches = Json::obj();
    for bench in &suite.benches {
        let mut per_policy = Json::obj();
        for policy in POLICIES {
            let swapped = &bench.run(policy).stats.swapped_levels;
            let mut mix = Json::obj();
            for level in ServiceLevel::ALL {
                mix.set(
                    &format!("{level:?}").to_lowercase(),
                    100.0 * swapped.fraction(level),
                );
            }
            per_policy.set(policy.label(), mix);
        }
        benches.set(bench.name, per_policy);
    }
    Json::obj()
        .with("artifact", "table5")
        .with("benches", benches)
}

/// Fig. 6 twin: instruction count per recomputed RSlice (Compiler policy)
/// as `{length: slice count}` per benchmark, plus the aggregate shares the
/// paper quotes (§5.4).
pub fn fig6_json(suite: &EvalSuite) -> Json {
    let mut benches = Json::obj();
    let mut all_lengths: Vec<(usize, usize)> = Vec::new();
    for bench in &suite.benches {
        let lengths: Vec<usize> = bench
            .prob_binary
            .slices
            .iter()
            .map(|s| s.compute_len())
            .collect();
        let hist = bench
            .run(PolicyOutcome::Compiler)
            .stats
            .recomputed_length_histogram(&lengths);
        let mut bins = Json::obj();
        for (&len, &count) in &hist {
            bins.set(&len.to_string(), count);
            all_lengths.push((len, count));
        }
        benches.set(bench.name, bins);
    }
    let total: usize = all_lengths.iter().map(|&(_, c)| c).sum();
    let short: usize = all_lengths
        .iter()
        .filter(|&&(l, _)| l < 10)
        .map(|&(_, c)| c)
        .sum();
    let long: usize = all_lengths
        .iter()
        .filter(|&&(l, _)| l > 50)
        .map(|&(_, c)| c)
        .sum();
    let pct = |n: usize| {
        if total == 0 {
            0.0
        } else {
            100.0 * n as f64 / total as f64
        }
    };
    Json::obj()
        .with("artifact", "fig6")
        .with("benches", benches)
        .with(
            "aggregate",
            Json::obj()
                .with("recomputed_slices", total)
                .with("under_10_insts_pct", pct(short))
                .with("over_50_insts_pct", pct(long)),
        )
}

/// Fig. 7 twin: share of RSlices with non-recomputable leaf inputs, plus
/// the observed `Hist` high-water mark, per benchmark.
pub fn fig7_json(suite: &EvalSuite) -> Json {
    let mut benches = Json::obj();
    let mut worst_hist = 0usize;
    for bench in &suite.benches {
        let total = bench.prob_binary.slices.len();
        let with_nc = bench
            .prob_binary
            .slices
            .iter()
            .filter(|s| s.has_nonrecomputable)
            .count();
        let hist_hw = bench
            .runs
            .iter()
            .map(|(_, r)| r.stats.hist_high_water)
            .max()
            .unwrap_or(0);
        worst_hist = worst_hist.max(hist_hw);
        let nc_pct = if total == 0 {
            0.0
        } else {
            100.0 * with_nc as f64 / total as f64
        };
        benches.set(
            bench.name,
            Json::obj()
                .with("slices", total)
                .with("with_nc_pct", nc_pct)
                .with("hist_high_water", hist_hw),
        );
    }
    Json::obj()
        .with("artifact", "fig7")
        .with("benches", benches)
        .with("worst_hist_high_water", worst_hist)
}

/// Fig. 8 twin: value locality of swapped loads as `(locality %, dynamic
/// count)` pairs per benchmark.
pub fn fig8_json(suite: &EvalSuite) -> Json {
    let mut benches = Json::obj();
    for bench in &suite.benches {
        let selected = bench.prob_report.selected_load_pcs();
        let sites = Json::Arr(
            bench
                .profile
                .loads
                .values()
                .filter(|site| selected.contains(&site.pc))
                .map(|site| {
                    Json::obj()
                        .with("pc", site.pc)
                        .with("locality_pct", 100.0 * site.value_locality())
                        .with("dyn_count", site.count)
                })
                .collect(),
        );
        benches.set(bench.name, sites);
    }
    Json::obj()
        .with("artifact", "fig8")
        .with("benches", benches)
}

/// Table 6 twin: break-even `R` factor per focal benchmark. `null` means
/// the benchmark still gains at [`table6::MAX_FACTOR`].
pub fn table6_json(scale: Scale) -> Json {
    table6_rows_json(&table6::compute(scale))
}

/// [`table6_json`] over precomputed [`table6::compute`] rows.
pub fn table6_rows_json(rows: &[(String, Option<f64>)]) -> Json {
    let mut benches = Json::obj();
    for (name, factor) in rows {
        benches.set(name, factor.map_or(Json::Null, Json::from));
    }
    Json::obj()
        .with("artifact", "table6")
        .with("r_default", amnesiac_energy::R_DEFAULT)
        .with("max_factor", table6::MAX_FACTOR)
        .with("benches", benches)
}

/// Controls twin: EDP gains of the non-focal suite plus the responder
/// count the paper quotes.
pub fn controls_json(suite: &EvalSuite) -> Json {
    gains_json(suite, "controls", "edp_gain_pct", BenchEval::edp_gain)
        .with("responders_over_5pct", suite.responders(5.0))
        .with("n_benches", suite.benches.len())
}

/// Extracts `--json <dir>` from an argument list (the experiment drivers'
/// shared flag for machine-readable twins). Returns `None` when absent.
pub fn json_dir_from_args(args: &[String]) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes one JSON document to `path` (pretty-printed, trailing newline),
/// creating parent directories as needed. Thin wrapper over the canonical
/// [`amnesiac_telemetry::write_json_file`] so every artifact writer in the
/// workspace shares one on-disk format.
pub fn write_json(path: &Path, json: &Json) -> io::Result<()> {
    amnesiac_telemetry::write_json_file(path, json)
}

/// The suite-derived artifacts (Figs. 3–8, Tables 4–5) plus the full raw
/// dump (`suite.json`, which includes per-policy run stats and pipeline
/// stage timings), as `(file name, document)` pairs in the order
/// [`write_suite_artifacts`] writes them.
pub fn suite_artifacts(suite: &EvalSuite) -> Vec<(&'static str, Json)> {
    vec![
        ("fig3.json", fig3_json(suite)),
        ("fig4.json", fig4_json(suite)),
        ("fig5.json", fig5_json(suite)),
        ("table4.json", table4_json(suite)),
        ("table5.json", table5_json(suite)),
        ("fig6.json", fig6_json(suite)),
        ("fig7.json", fig7_json(suite)),
        ("fig8.json", fig8_json(suite)),
        ("suite.json", suite.to_json()),
    ]
}

/// Writes the machine-readable twins of every suite-derived artifact (see
/// [`suite_artifacts`]) into `dir` through one [`JsonSink`]. Returns the
/// paths written.
pub fn write_suite_artifacts(dir: &Path, suite: &EvalSuite) -> io::Result<Vec<PathBuf>> {
    let sink = JsonSink::new(dir);
    let mut written = Vec::new();
    for (name, json) in suite_artifacts(suite) {
        written.push(sink.write(name, &json)?);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    use amnesiac_energy::EnergyModel;
    use amnesiac_telemetry::parse;
    use amnesiac_workloads::build_focal;

    fn tiny_suite() -> EvalSuite {
        EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        }
    }

    #[test]
    fn every_artifact_round_trips_through_the_parser() {
        let suite = tiny_suite();
        for json in [
            fig3_json(&suite),
            fig4_json(&suite),
            fig5_json(&suite),
            table1_json(),
            table2_json(),
            table4_json(&suite),
            table5_json(&suite),
            fig6_json(&suite),
            fig7_json(&suite),
            fig8_json(&suite),
            controls_json(&suite),
            suite.to_json(),
        ] {
            let reparsed = parse(&json.pretty()).expect("emitted JSON parses");
            assert_eq!(reparsed, json, "emit → parse is the identity");
            let compact = parse(&json.compact()).expect("compact JSON parses");
            assert_eq!(compact, json);
        }
    }

    #[test]
    fn gains_twin_matches_the_text_table() {
        let suite = tiny_suite();
        let json = fig3_json(&suite);
        let bench = &suite.benches[0];
        for &p in &PolicyOutcome::ALL {
            let path = format!("benches.is.{}", p.label());
            let from_json = json.get_path(&path).and_then(Json::as_f64).unwrap();
            assert!((from_json - bench.edp_gain(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn suite_dump_carries_stage_timings_and_policies() {
        let suite = tiny_suite();
        let json = suite.to_json();
        let bench = json.get("benches").and_then(Json::as_arr).unwrap()[0].clone();
        assert_eq!(bench.get("name").and_then(Json::as_str), Some("is"));
        assert!(bench
            .get_path("stages.profile_ms")
            .and_then(Json::as_f64)
            .is_some_and(|ms| ms >= 0.0));
        for &p in &PolicyOutcome::ALL {
            assert!(
                bench
                    .get_path(&format!(
                        "policies.{}.result.run.account.total_nj",
                        p.label()
                    ))
                    .is_some(),
                "{} missing from suite dump",
                p.label()
            );
        }
    }

    #[test]
    fn write_suite_artifacts_creates_the_results_dir() {
        let suite = tiny_suite();
        let dir = std::env::temp_dir().join("amnesiac-export-test");
        let _ = fs::remove_dir_all(&dir);
        let written = write_suite_artifacts(&dir, &suite).expect("write succeeds");
        assert_eq!(written.len(), 9);
        for path in &written {
            let text = fs::read_to_string(path).expect("file exists");
            parse(&text).expect("file is valid JSON");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
