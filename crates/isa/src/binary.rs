//! A binary image format for programs — including *annotated* binaries
//! with their embedded slices and operand plans, which the textual
//! assembly format deliberately excludes. [`encode_program`] and
//! [`decode_program`] round-trip exactly.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "AMNC" | version u16 | name len u16 + bytes
//! entry u32 | code_len u32
//! n_instructions u32 | encoded instructions (variable length)
//! n_data u32 | (addr u64, value u64)*
//! n_output u32 | (start u64, len u64)*
//! n_readonly u32 | (start u64, len u64)*
//! n_slices u32 | slice records
//! ```

use crate::inst::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp, Instruction};
use crate::program::{LeafInfo, MemRange, OperandPlan, OperandSource, Program, SliceId, SliceMeta};
use crate::Reg;

/// Image magic bytes.
pub const MAGIC: &[u8; 4] = b"AMNC";
/// Image format version.
pub const VERSION: u16 = 1;

/// Errors from [`decode_program`].
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The image ended mid-field.
    Truncated {
        /// Byte offset where more data was expected.
        at: usize,
    },
    /// An opcode or sub-opcode byte is invalid.
    BadOpcode {
        /// Byte offset of the offending byte.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// The decoded program failed structural validation.
    Invalid(crate::IsaError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an AMNC image"),
            DecodeError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            DecodeError::Truncated { at } => write!(f, "image truncated at byte {at}"),
            DecodeError::BadOpcode { at, byte } => {
                write!(f, "invalid opcode byte {byte:#04x} at offset {at}")
            }
            DecodeError::Invalid(e) => write!(f, "decoded program is invalid: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<crate::IsaError> for DecodeError {
    fn from(e: crate::IsaError) -> Self {
        DecodeError::Invalid(e)
    }
}

struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn reg(&mut self, r: Reg) {
        self.u8(r.0);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated { at: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        Ok(Reg(self.u8()?))
    }
}

fn encode_instruction(w: &mut Writer, inst: &Instruction) {
    match inst {
        Instruction::Li { dst, imm } => {
            w.u8(0x01);
            w.reg(*dst);
            w.u64(*imm);
        }
        Instruction::Alu { op, dst, lhs, rhs } => {
            w.u8(0x02);
            w.u8(alu_code(*op));
            w.reg(*dst);
            w.reg(*lhs);
            w.reg(*rhs);
        }
        Instruction::Alui { op, dst, src, imm } => {
            w.u8(0x03);
            w.u8(alu_code(*op));
            w.reg(*dst);
            w.reg(*src);
            w.u64(*imm);
        }
        Instruction::Fpu { op, dst, lhs, rhs } => {
            w.u8(0x04);
            w.u8(fp_code(*op));
            w.reg(*dst);
            w.reg(*lhs);
            w.reg(*rhs);
        }
        Instruction::FpuUn { op, dst, src } => {
            w.u8(0x05);
            w.u8(fp_un_code(*op));
            w.reg(*dst);
            w.reg(*src);
        }
        Instruction::Fma { dst, a, b, c } => {
            w.u8(0x06);
            w.reg(*dst);
            w.reg(*a);
            w.reg(*b);
            w.reg(*c);
        }
        Instruction::Cvt { kind, dst, src } => {
            w.u8(0x07);
            w.u8(match kind {
                CvtKind::I2F => 0,
                CvtKind::F2I => 1,
            });
            w.reg(*dst);
            w.reg(*src);
        }
        Instruction::Load { dst, base, offset } => {
            w.u8(0x08);
            w.reg(*dst);
            w.reg(*base);
            w.i64(*offset);
        }
        Instruction::Store { src, base, offset } => {
            w.u8(0x09);
            w.reg(*src);
            w.reg(*base);
            w.i64(*offset);
        }
        Instruction::Branch {
            cond,
            lhs,
            rhs,
            target,
        } => {
            w.u8(0x0A);
            w.u8(cond_code(*cond));
            w.reg(*lhs);
            w.reg(*rhs);
            w.u32(*target as u32);
        }
        Instruction::Jump { target } => {
            w.u8(0x0B);
            w.u32(*target as u32);
        }
        Instruction::Halt => w.u8(0x0C),
        Instruction::Rcmp {
            dst,
            base,
            offset,
            slice,
        } => {
            w.u8(0x0D);
            w.reg(*dst);
            w.reg(*base);
            w.i64(*offset);
            w.u32(slice.0);
        }
        Instruction::Rtn { slice } => {
            w.u8(0x0E);
            w.u32(slice.0);
        }
        Instruction::Rec { key, srcs } => {
            w.u8(0x0F);
            w.u16(*key);
            let n = srcs.iter().flatten().count() as u8;
            w.u8(n);
            for r in srcs.iter().flatten() {
                w.reg(*r);
            }
        }
    }
}

fn decode_instruction(r: &mut Reader<'_>) -> Result<Instruction, DecodeError> {
    let at = r.pos;
    let opcode = r.u8()?;
    Ok(match opcode {
        0x01 => Instruction::Li {
            dst: r.reg()?,
            imm: r.u64()?,
        },
        0x02 => Instruction::Alu {
            op: alu_from(r.u8()?, at)?,
            dst: r.reg()?,
            lhs: r.reg()?,
            rhs: r.reg()?,
        },
        0x03 => Instruction::Alui {
            op: alu_from(r.u8()?, at)?,
            dst: r.reg()?,
            src: r.reg()?,
            imm: r.u64()?,
        },
        0x04 => Instruction::Fpu {
            op: fp_from(r.u8()?, at)?,
            dst: r.reg()?,
            lhs: r.reg()?,
            rhs: r.reg()?,
        },
        0x05 => Instruction::FpuUn {
            op: fp_un_from(r.u8()?, at)?,
            dst: r.reg()?,
            src: r.reg()?,
        },
        0x06 => Instruction::Fma {
            dst: r.reg()?,
            a: r.reg()?,
            b: r.reg()?,
            c: r.reg()?,
        },
        0x07 => Instruction::Cvt {
            kind: match r.u8()? {
                0 => CvtKind::I2F,
                1 => CvtKind::F2I,
                byte => return Err(DecodeError::BadOpcode { at, byte }),
            },
            dst: r.reg()?,
            src: r.reg()?,
        },
        0x08 => Instruction::Load {
            dst: r.reg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x09 => Instruction::Store {
            src: r.reg()?,
            base: r.reg()?,
            offset: r.i64()?,
        },
        0x0A => Instruction::Branch {
            cond: cond_from(r.u8()?, at)?,
            lhs: r.reg()?,
            rhs: r.reg()?,
            target: r.u32()? as usize,
        },
        0x0B => Instruction::Jump {
            target: r.u32()? as usize,
        },
        0x0C => Instruction::Halt,
        0x0D => Instruction::Rcmp {
            dst: r.reg()?,
            base: r.reg()?,
            offset: r.i64()?,
            slice: SliceId(r.u32()?),
        },
        0x0E => Instruction::Rtn {
            slice: SliceId(r.u32()?),
        },
        0x0F => {
            let key = r.u16()?;
            let n = r.u8()? as usize;
            if n > 3 {
                return Err(DecodeError::BadOpcode { at, byte: n as u8 });
            }
            let mut srcs = [None, None, None];
            for slot in srcs.iter_mut().take(n) {
                *slot = Some(r.reg()?);
            }
            Instruction::Rec { key, srcs }
        }
        byte => return Err(DecodeError::BadOpcode { at, byte }),
    })
}

macro_rules! code_pairs {
    ($enc:ident, $dec:ident, $ty:ty, [$(($variant:path, $code:expr)),+ $(,)?]) => {
        fn $enc(v: $ty) -> u8 {
            match v {
                $($variant => $code,)+
            }
        }
        fn $dec(byte: u8, at: usize) -> Result<$ty, DecodeError> {
            Ok(match byte {
                $($code => $variant,)+
                _ => return Err(DecodeError::BadOpcode { at, byte }),
            })
        }
    };
}

code_pairs!(
    alu_code,
    alu_from,
    AluOp,
    [
        (AluOp::Add, 0),
        (AluOp::Sub, 1),
        (AluOp::Mul, 2),
        (AluOp::Div, 3),
        (AluOp::Rem, 4),
        (AluOp::And, 5),
        (AluOp::Or, 6),
        (AluOp::Xor, 7),
        (AluOp::Shl, 8),
        (AluOp::Shr, 9),
        (AluOp::Slt, 10),
        (AluOp::Sltu, 11),
        (AluOp::Seq, 12),
        (AluOp::Min, 13),
        (AluOp::Max, 14),
    ]
);
code_pairs!(
    fp_code,
    fp_from,
    FpOp,
    [
        (FpOp::Add, 0),
        (FpOp::Sub, 1),
        (FpOp::Mul, 2),
        (FpOp::Div, 3),
        (FpOp::Min, 4),
        (FpOp::Max, 5),
        (FpOp::Flt, 6),
    ]
);
code_pairs!(
    fp_un_code,
    fp_un_from,
    FpUnOp,
    [
        (FpUnOp::Sqrt, 0),
        (FpUnOp::Neg, 1),
        (FpUnOp::Abs, 2),
        (FpUnOp::Exp, 3),
        (FpUnOp::Ln, 4),
    ]
);
code_pairs!(
    cond_code,
    cond_from,
    BranchCond,
    [
        (BranchCond::Eq, 0),
        (BranchCond::Ne, 1),
        (BranchCond::Lt, 2),
        (BranchCond::Ge, 3),
        (BranchCond::Ltu, 4),
        (BranchCond::Geu, 5),
    ]
);

fn encode_source(w: &mut Writer, source: &Option<OperandSource>) {
    match source {
        None => w.u8(0),
        Some(OperandSource::LiveReg) => w.u8(1),
        Some(OperandSource::Hist { key }) => {
            w.u8(2);
            w.u16(*key);
        }
        Some(OperandSource::SFile { producer }) => {
            w.u8(3);
            w.u16(*producer);
        }
    }
}

fn decode_source(r: &mut Reader<'_>) -> Result<Option<OperandSource>, DecodeError> {
    let at = r.pos;
    Ok(match r.u8()? {
        0 => None,
        1 => Some(OperandSource::LiveReg),
        2 => Some(OperandSource::Hist { key: r.u16()? }),
        3 => Some(OperandSource::SFile { producer: r.u16()? }),
        byte => return Err(DecodeError::BadOpcode { at, byte }),
    })
}

/// Encodes a program (classic or annotated) to a binary image.
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut w = Writer { bytes: Vec::new() };
    w.bytes.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u16(program.name.len() as u16);
    w.bytes.extend_from_slice(program.name.as_bytes());
    w.u32(program.entry as u32);
    w.u32(program.code_len as u32);
    w.u32(program.instructions.len() as u32);
    for inst in &program.instructions {
        encode_instruction(&mut w, inst);
    }
    let data: Vec<(u64, u64)> = program.data.iter().collect();
    w.u32(data.len() as u32);
    for (addr, value) in data {
        w.u64(addr);
        w.u64(value);
    }
    for ranges in [&program.output, &program.read_only] {
        w.u32(ranges.len() as u32);
        for range in ranges.iter() {
            w.u64(range.start);
            w.u64(range.len);
        }
    }
    w.u32(program.slices.len() as u32);
    for meta in &program.slices {
        w.u32(meta.id.0);
        w.u32(meta.rcmp_pc as u32);
        w.u32(meta.entry as u32);
        w.u32(meta.len as u32);
        w.reg(meta.root_reg);
        w.u8(u8::from(meta.has_nonrecomputable));
        w.u64(meta.est_recompute_nj.to_bits());
        w.u64(meta.est_load_nj.to_bits());
        w.u32(meta.height);
        w.u32(meta.plans.len() as u32);
        for plan in &meta.plans {
            for source in &plan.sources {
                encode_source(&mut w, source);
            }
        }
        w.u32(meta.leaves.len() as u32);
        for leaf in &meta.leaves {
            w.u16(leaf.index);
            w.u8(u8::from(leaf.needs_hist));
            match leaf.origin_pc {
                Some(pc) => {
                    w.u8(1);
                    w.u32(pc as u32);
                }
                None => w.u8(0),
            }
        }
    }
    w.bytes
}

/// Decodes a binary image back into a validated [`Program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed images or images that decode
/// into structurally invalid programs.
pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let name_len = r.u16()? as usize;
    let name = String::from_utf8_lossy(r.take(name_len)?).into_owned();
    let entry = r.u32()? as usize;
    let code_len = r.u32()? as usize;
    let n_inst = r.u32()? as usize;
    let mut instructions = Vec::with_capacity(n_inst.min(1 << 20));
    for _ in 0..n_inst {
        instructions.push(decode_instruction(&mut r)?);
    }
    let mut program = Program::new(name);
    program.entry = entry;
    program.code_len = code_len;
    program.instructions = instructions;
    let n_data = r.u32()? as usize;
    for _ in 0..n_data {
        let addr = r.u64()?;
        let value = r.u64()?;
        program.data.set(addr, value);
    }
    for _ in 0..r.u32()? {
        program.output.push(MemRange::new(r.u64()?, r.u64()?));
    }
    for _ in 0..r.u32()? {
        program.read_only.push(MemRange::new(r.u64()?, r.u64()?));
    }
    let n_slices = r.u32()? as usize;
    for _ in 0..n_slices {
        let id = SliceId(r.u32()?);
        let rcmp_pc = r.u32()? as usize;
        let entry = r.u32()? as usize;
        let len = r.u32()? as usize;
        let root_reg = r.reg()?;
        let has_nonrecomputable = r.u8()? != 0;
        let est_recompute_nj = f64::from_bits(r.u64()?);
        let est_load_nj = f64::from_bits(r.u64()?);
        let height = r.u32()?;
        let n_plans = r.u32()? as usize;
        let mut plans = Vec::with_capacity(n_plans.min(1 << 16));
        for _ in 0..n_plans {
            let mut sources = [None, None, None];
            for slot in &mut sources {
                *slot = decode_source(&mut r)?;
            }
            plans.push(OperandPlan { sources });
        }
        let n_leaves = r.u32()? as usize;
        let mut leaves = Vec::with_capacity(n_leaves.min(1 << 16));
        for _ in 0..n_leaves {
            let index = r.u16()?;
            let needs_hist = r.u8()? != 0;
            let origin_pc = match r.u8()? {
                0 => None,
                _ => Some(r.u32()? as usize),
            };
            leaves.push(LeafInfo {
                index,
                needs_hist,
                origin_pc,
            });
        }
        program.slices.push(SliceMeta {
            id,
            rcmp_pc,
            entry,
            len,
            root_reg,
            plans,
            leaves,
            has_nonrecomputable,
            est_recompute_nj,
            est_load_nj,
            height,
        });
    }
    crate::validate::validate(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::AluOp;

    fn classic() -> Program {
        let mut b = ProgramBuilder::new("bin-test");
        let data = b.alloc_data(&[7, 8, u64::MAX]);
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.mark_read_only(data, 3);
        b.li(Reg(1), data);
        b.load(Reg(2), Reg(1), 2);
        b.alui(AluOp::Xor, Reg(3), Reg(2), 0xDEAD_BEEF);
        b.fma(Reg(4), Reg(3), Reg(3), Reg(3));
        let skip = b.label();
        b.branch(crate::inst::BranchCond::Ltu, Reg(3), Reg(2), skip);
        b.store(Reg(3), Reg(1), -1);
        b.bind(skip).unwrap();
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn classic_roundtrip_is_exact() {
        let p = classic();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode_program(&classic());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_program(&bad), Err(DecodeError::BadMagic));
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode_program(&classic());
        for cut in 1..bytes.len() {
            let err = decode_program(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::BadOpcode { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_opcode() {
        let p = classic();
        let mut bytes = encode_program(&p);
        // the first instruction opcode sits after magic+version+name+entry+
        // code_len+n_inst
        let offset = 4 + 2 + 2 + p.name.len() + 4 + 4 + 4;
        bytes[offset] = 0xEE;
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::BadOpcode { .. })
        ));
    }

    #[test]
    fn structurally_invalid_decodes_are_rejected() {
        let mut p = classic();
        // corrupt after encoding by pointing entry out of range
        p.entry = 0;
        let mut bytes = encode_program(&p);
        // entry field offset: magic(4)+version(2)+name_len(2)+name
        let offset = 4 + 2 + 2 + p.name.len();
        bytes[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_program(&bytes),
            Err(DecodeError::Invalid(_))
        ));
    }
}
