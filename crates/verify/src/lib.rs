#![warn(missing_docs)]
#![deny(unsafe_code)]

//! Static slice well-formedness verifier for annotated amnesiac binaries.
//!
//! The amnesic compiler's contract (§3.2 of the paper) is that every
//! recomputation slice re-produces the value its `RCMP` would have loaded:
//! slice bodies are pure compute terminated by the right `RTN`, every
//! non-recomputable leaf operand was checkpointed by a `REC` before the
//! `RCMP` can fire, and main code never wanders into the appended slice
//! region. The dynamic replay validator (`amnesiac-compiler`) checks this
//! only on the profiled inputs; this crate proves the invariants for *all*
//! inputs with a CFG-plus-dataflow static analysis:
//!
//! * basic blocks, reachability and dominators over the main code
//!   ([`cfg`]),
//! * a forward must-reach analysis of `REC` checkpoints ([`dataflow`]),
//! * structural checks of every [`amnesiac_isa::SliceMeta`] against the
//!   instruction stream.
//!
//! [`verify`] returns a [`VerifyReport`] of typed [`Diagnostic`]s; a report
//! with no [`Severity::Error`] entries is *clean*. The verifier never
//! panics on malformed input — adversarially mutated binaries are exactly
//! its job — so every index into the program is bounds-checked.

pub use amnesiac_cfg as cfg;
pub mod dataflow;

use std::collections::BTreeSet;
use std::fmt;

use amnesiac_isa::{predecode, DecodedInst, Instruction, Program};
use amnesiac_telemetry::{Json, ToJson};

use cfg::Cfg;
use dataflow::RecCoverage;

/// Default `SFile` capacity (entries) used for the register-pressure
/// invariant: the paper's Table 3 provisions 256 entries
/// (`max#slice_insts × max#rename`), matching the runtime configuration.
pub const DEFAULT_SFILE_CAPACITY: usize = 256;

/// Default `Hist` capacity (keys) used by the key-range invariant: the
/// checkpoint table is direct-mapped on the leaf key, so a key at or past
/// this bound can never be recorded or found at runtime.
pub const DEFAULT_HIST_CAPACITY: usize = 4096;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The binary is statically suspicious but still executes correctly
    /// (the runtime degrades gracefully, e.g. a `Hist` miss forces the
    /// fallback load).
    Warn,
    /// The binary violates a slice invariant: amnesic execution may compute
    /// a wrong value, leak a side effect, or trap.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The invariant a diagnostic reports on (§3.2 slice legality and §3.4
/// storage bounds). Each kind carries a fixed [`Severity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticKind {
    /// A slice body instruction is not pure compute (store, load, branch,
    /// jump, or another amnesic op inside the body).
    SliceSideEffect,
    /// A slice body does not end in its own `Rtn { slice }`.
    SliceMissingRtn,
    /// A slice body's `[entry, entry + len)` range overlaps the main code
    /// or runs past the end of the instruction stream.
    SliceOutOfBounds,
    /// An `RCMP` and its slice metadata disagree: unknown slice id, or the
    /// slice's `rcmp_pc` does not point back at this `RCMP`.
    RcmpBadTarget,
    /// A slice's operand plans are inconsistent with its body: wrong plan
    /// count, operand present/absent mismatch, an `SFile` producer at or
    /// after its consumer, or a root register that is not the last compute
    /// destination.
    OperandPlanMismatch,
    /// A slice's leaf table disagrees with its plans: a leaf instruction
    /// missing from the table, a non-leaf listed, an out-of-range index, or
    /// a wrong `needs_hist` flag.
    LeafNotCovered,
    /// A `Hist`-sourced operand has no reachable `REC` checkpointing its
    /// key anywhere in the main code: the slice can never fire from `Hist`.
    UncheckpointedHist,
    /// `REC`s for the key exist but do not cover *all* static paths from
    /// the entry to the `RCMP` (the single-site case is exactly "the `REC`
    /// does not dominate the `RCMP`"). On the uncovered paths the runtime
    /// misses in `Hist` and falls back to the load, so this degrades
    /// energy, not correctness.
    RecNotDominating,
    /// A `REC` checkpoints a key that no slice reads — dead `Hist` traffic.
    RecKeyOrphan,
    /// A slice body holds more compute instructions than the `SFile` can
    /// rename (Table 3): the runtime will always force the fallback load.
    SfilePressure,
    /// Main code can enter the appended slice region: a fallthrough at
    /// `code_len`, a branch/jump target inside it, or an entry pc beyond it.
    MainCodeEntersSliceRegion,
    /// A slice whose owning `RCMP` is unreachable from the program entry —
    /// the body is dead weight in the binary.
    UnreachableSlice,
    /// Slice body producers whose value is never consumed — not by any
    /// later `SFile` operand and not as the root. The recomputation burns
    /// energy on values it throws away.
    DeadSliceCompute,
    /// The whole recomputation folds to one compile-time constant: the
    /// slice spends a multi-instruction traversal on what a single
    /// immediate would provide.
    ConstantFoldableSlice,
    /// The abstract interpreter proves the recomputed value lies outside
    /// every value the loaded address can hold: the slice diverges at every
    /// firing. The `RCMP` still retires the architecturally loaded value,
    /// so this degrades energy (wasted traversals), not correctness — and
    /// dynamic replay will drop the slice.
    RcmpDivergent,
    /// A `Hist` key at or past the checkpoint table's capacity: the runtime
    /// can never record or find it, so every firing misses and falls back.
    HistKeyOutOfRange,
    /// Liveness proof that the body needs more concurrently live `SFile`
    /// slots than the file has even with perfect renaming — a strictly
    /// stronger fact than [`DiagnosticKind::SfilePressure`]'s instruction
    /// count.
    SfileOverflow,
}

impl DiagnosticKind {
    /// The fixed severity of this kind.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::SliceSideEffect
            | DiagnosticKind::SliceMissingRtn
            | DiagnosticKind::SliceOutOfBounds
            | DiagnosticKind::RcmpBadTarget
            | DiagnosticKind::OperandPlanMismatch
            | DiagnosticKind::LeafNotCovered
            | DiagnosticKind::UncheckpointedHist
            | DiagnosticKind::MainCodeEntersSliceRegion
            | DiagnosticKind::HistKeyOutOfRange
            | DiagnosticKind::SfileOverflow => Severity::Error,
            DiagnosticKind::RecNotDominating
            | DiagnosticKind::RecKeyOrphan
            | DiagnosticKind::SfilePressure
            | DiagnosticKind::UnreachableSlice
            | DiagnosticKind::DeadSliceCompute
            | DiagnosticKind::ConstantFoldableSlice
            | DiagnosticKind::RcmpDivergent => Severity::Warn,
        }
    }

    /// Stable kebab-case name, used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::SliceSideEffect => "slice-side-effect",
            DiagnosticKind::SliceMissingRtn => "slice-missing-rtn",
            DiagnosticKind::SliceOutOfBounds => "slice-out-of-bounds",
            DiagnosticKind::RcmpBadTarget => "rcmp-bad-target",
            DiagnosticKind::OperandPlanMismatch => "operand-plan-mismatch",
            DiagnosticKind::LeafNotCovered => "leaf-not-covered",
            DiagnosticKind::UncheckpointedHist => "uncheckpointed-hist",
            DiagnosticKind::RecNotDominating => "rec-not-dominating",
            DiagnosticKind::RecKeyOrphan => "rec-key-orphan",
            DiagnosticKind::SfilePressure => "sfile-pressure",
            DiagnosticKind::MainCodeEntersSliceRegion => "main-code-enters-slice-region",
            DiagnosticKind::UnreachableSlice => "unreachable-slice",
            DiagnosticKind::DeadSliceCompute => "dead-slice-compute",
            DiagnosticKind::ConstantFoldableSlice => "constant-foldable-slice",
            DiagnosticKind::RcmpDivergent => "rcmp-divergent",
            DiagnosticKind::HistKeyOutOfRange => "hist-key-out-of-range",
            DiagnosticKind::SfileOverflow => "sfile-overflow",
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One verifier finding, anchored to a pc and/or slice where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated invariant.
    pub kind: DiagnosticKind,
    /// `kind.severity()`, denormalised for consumers.
    pub severity: Severity,
    /// Instruction index the finding anchors to, if any.
    pub pc: Option<usize>,
    /// Slice id the finding concerns, if any.
    pub slice: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
    /// When the verifier itself can prove the warned-about situation is
    /// benign (e.g. the uncovered path is statically infeasible), the proof
    /// sketch lands here and the finding no longer counts against
    /// [`VerifyReport::unexplained_warn_count`]. Always `None` on errors.
    pub explained: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.kind)?;
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        if let Some(s) = self.slice {
            write!(f, " slice{s}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(why) = &self.explained {
            write!(f, " (explained: {why})")?;
        }
        Ok(())
    }
}

impl ToJson for Diagnostic {
    /// `{kind, severity, pc?, slice?, message, explained?}`.
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("kind", self.kind.name())
            .with("severity", self.severity.to_string());
        if let Some(pc) = self.pc {
            j.set("pc", pc);
        }
        if let Some(s) = self.slice {
            j.set("slice", s);
        }
        j = j.with("message", self.message.as_str());
        if let Some(why) = &self.explained {
            j.set("explained", why.as_str());
        }
        j
    }
}

/// Tunable bounds for the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// `SFile` capacity used by the register-pressure invariant.
    pub sfile_capacity: usize,
    /// `Hist` capacity used by the key-range invariant.
    pub hist_capacity: usize,
    /// Run the abstract-interpretation passes (`amnesiac-absint`): liveness
    /// proofs, constant folding, divergence detection, and zero-trip
    /// explanations for coverage warnings. On by default; switch off to get
    /// the purely structural verifier.
    pub static_analysis: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            sfile_capacity: DEFAULT_SFILE_CAPACITY,
            hist_capacity: DEFAULT_HIST_CAPACITY,
            static_analysis: true,
        }
    }
}

/// The verifier's findings over one program.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// All findings, in deterministic check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of basic blocks in the main-code CFG.
    pub blocks: usize,
    /// Number of slices examined.
    pub slices_checked: usize,
}

impl VerifyReport {
    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of [`Severity::Warn`] findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Warnings with no machine-checked benignity proof attached. This is
    /// the number the lint gate holds at zero: an explained warning is an
    /// allowlisted, understood degradation; an unexplained one is new
    /// information.
    pub fn unexplained_warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn && d.explained.is_none())
            .count()
    }

    /// `true` when no Error-severity invariant is violated (warnings are
    /// allowed: they flag statically unprovable but dynamically safe
    /// situations).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` if any finding has the given kind.
    pub fn has_kind(&self, kind: DiagnosticKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }
}

impl ToJson for VerifyReport {
    /// `{clean, errors, warnings, unexplained_warnings, blocks,
    /// slices_checked, diagnostics}`.
    fn to_json(&self) -> Json {
        Json::obj()
            .with("clean", self.is_clean())
            .with("errors", self.error_count())
            .with("warnings", self.warn_count())
            .with("unexplained_warnings", self.unexplained_warn_count())
            .with("blocks", self.blocks)
            .with("slices_checked", self.slices_checked)
            .with(
                "diagnostics",
                self.diagnostics
                    .iter()
                    .map(|d| d.to_json())
                    .collect::<Vec<_>>(),
            )
    }
}

/// Verifies a program with the default (paper Table 3) bounds.
pub fn verify(program: &Program) -> VerifyReport {
    verify_with(program, &VerifyOptions::default())
}

/// Verifies a program against [`VerifyOptions`].
///
/// Runs on classic binaries too (the slice checks are vacuous), so callers
/// can gate uniformly. Never panics on malformed or mutated input.
pub fn verify_with(program: &Program, opts: &VerifyOptions) -> VerifyReport {
    verify_decoded(program, &predecode(program), opts)
}

/// [`verify_with`] over a caller-supplied predecoded stream of `program`.
///
/// The compile gate re-verifies after every validation round; sharing the
/// round's predecode (the same stream its replay dispatches on) avoids
/// decoding the annotated binary twice per round.
pub fn verify_decoded(
    program: &Program,
    decoded: &[DecodedInst],
    opts: &VerifyOptions,
) -> VerifyReport {
    let v = Verifier {
        program,
        opts,
        code_len: program.code_len.min(program.instructions.len()),
        diagnostics: Vec::new(),
    };
    v.run(decoded)
}

struct Verifier<'a> {
    program: &'a Program,
    opts: &'a VerifyOptions,
    code_len: usize,
    diagnostics: Vec<Diagnostic>,
}

impl Verifier<'_> {
    fn emit(
        &mut self,
        kind: DiagnosticKind,
        pc: Option<usize>,
        slice: Option<u32>,
        message: String,
    ) {
        self.emit_explained(kind, pc, slice, message, None);
    }

    fn emit_explained(
        &mut self,
        kind: DiagnosticKind,
        pc: Option<usize>,
        slice: Option<u32>,
        message: String,
        explained: Option<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            kind,
            severity: kind.severity(),
            pc,
            slice,
            message,
            explained,
        });
    }

    fn run(mut self, decoded: &[DecodedInst]) -> VerifyReport {
        let cfg = Cfg::build(decoded, self.code_len, self.program.entry);

        self.check_main_region();
        // Slices with a sound RCMP binding, eligible for the path checks.
        let bound: Vec<bool> = (0..self.program.slices.len())
            .map(|i| self.check_slice(i))
            .collect();
        let coverage = RecCoverage::analyze(decoded, self.code_len, &cfg);
        let mut analysis = self
            .opts
            .static_analysis
            .then(|| amnesiac_absint::Analysis::of_program(self.program));
        self.check_rec_coverage(decoded, &cfg, &coverage, &bound, analysis.as_ref());
        self.check_orphan_recs(&coverage);
        if let Some(a) = analysis.as_mut() {
            self.check_absint(a, &bound);
        }

        VerifyReport {
            diagnostics: self.diagnostics,
            blocks: cfg.len(),
            slices_checked: self.program.slices.len(),
        }
    }

    /// Entry placement, control targets, and the fallthrough seal between
    /// the main code and the appended slice region.
    fn check_main_region(&mut self) {
        let p = self.program;
        let code_len = self.code_len;
        if code_len == 0 {
            return;
        }
        if p.entry >= code_len {
            self.emit(
                DiagnosticKind::MainCodeEntersSliceRegion,
                Some(p.entry),
                None,
                format!("entry pc {} is outside the main code region", p.entry),
            );
        }
        for (pc, inst) in p.instructions[..code_len].iter().enumerate() {
            match *inst {
                Instruction::Branch { target, .. } | Instruction::Jump { target }
                    if target >= code_len =>
                {
                    self.emit(
                        DiagnosticKind::MainCodeEntersSliceRegion,
                        Some(pc),
                        None,
                        format!("control target {target} is outside the main code region"),
                    );
                }
                Instruction::Rcmp { slice, .. } => {
                    let idx = slice.index();
                    match p.slices.get(idx) {
                        None => self.emit(
                            DiagnosticKind::RcmpBadTarget,
                            Some(pc),
                            Some(slice.0),
                            format!(
                                "RCMP references unknown slice {} ({} slices in binary)",
                                slice.0,
                                p.slices.len()
                            ),
                        ),
                        Some(meta) if meta.rcmp_pc != pc => self.emit(
                            DiagnosticKind::RcmpBadTarget,
                            Some(pc),
                            Some(slice.0),
                            format!(
                                "RCMP references slice {}, but that slice is owned by the RCMP at pc {}",
                                slice.0, meta.rcmp_pc
                            ),
                        ),
                        Some(_) => {}
                    }
                }
                _ => {}
            }
        }
        // No main-code fallthrough into the appended slice bodies: the last
        // main instruction must end the program or jump away.
        if p.instructions.len() > code_len {
            let last = &p.instructions[code_len - 1];
            let seals = matches!(
                last,
                Instruction::Jump { .. } | Instruction::Halt | Instruction::Rtn { .. }
            );
            if !seals {
                self.emit(
                    DiagnosticKind::MainCodeEntersSliceRegion,
                    Some(code_len - 1),
                    None,
                    format!("main code can fall through into the slice region at pc {code_len}"),
                );
            }
        }
    }

    /// Structural checks of one slice. Returns `true` when the slice's
    /// bounds and RCMP binding are sound enough for the path-sensitive
    /// checks to anchor on `rcmp_pc`.
    fn check_slice(&mut self, idx: usize) -> bool {
        let p = self.program;
        let meta = &p.slices[idx];
        let sid = meta.id.0;

        if meta.id.index() != idx {
            self.emit(
                DiagnosticKind::RcmpBadTarget,
                None,
                Some(sid),
                format!("slice metadata at index {idx} carries id {sid}"),
            );
        }

        // Body placement: strictly inside the appended region.
        let in_bounds = meta.entry >= self.code_len
            && meta.len >= 2
            && meta
                .entry
                .checked_add(meta.len)
                .is_some_and(|end| end <= p.instructions.len());
        if !in_bounds {
            self.emit(
                DiagnosticKind::SliceOutOfBounds,
                Some(meta.entry),
                Some(sid),
                format!(
                    "body [{}, {}+{}) escapes the slice region [{}, {})",
                    meta.entry,
                    meta.entry,
                    meta.len,
                    self.code_len,
                    p.instructions.len()
                ),
            );
        }

        // RCMP ↔ slice binding (the reverse direction of the main scan).
        let rcmp_ok = match p.instructions.get(meta.rcmp_pc) {
            Some(Instruction::Rcmp { slice, .. }) if meta.rcmp_pc < self.code_len => {
                if slice.index() != idx {
                    self.emit(
                        DiagnosticKind::RcmpBadTarget,
                        Some(meta.rcmp_pc),
                        Some(sid),
                        format!(
                            "slice {} claims the RCMP at pc {}, which targets slice {}",
                            sid, meta.rcmp_pc, slice.0
                        ),
                    );
                    false
                } else {
                    true
                }
            }
            _ => {
                self.emit(
                    DiagnosticKind::RcmpBadTarget,
                    Some(meta.rcmp_pc),
                    Some(sid),
                    format!(
                        "slice {} claims an owning RCMP at pc {}, but no main-code RCMP is there",
                        sid, meta.rcmp_pc
                    ),
                );
                false
            }
        };

        if !in_bounds {
            return false;
        }

        // Body purity and the terminating RTN.
        let body = &p.instructions[meta.entry..meta.entry + meta.len];
        for (k, inst) in body[..meta.len - 1].iter().enumerate() {
            if !inst.is_slice_compute() {
                self.emit(
                    DiagnosticKind::SliceSideEffect,
                    Some(meta.entry + k),
                    Some(sid),
                    format!(
                        "slice body instruction {k} is {:?}-category, not pure compute",
                        inst.category()
                    ),
                );
            }
        }
        match body[meta.len - 1] {
            Instruction::Rtn { slice } if slice.index() == idx => {}
            Instruction::Rtn { slice } => self.emit(
                DiagnosticKind::SliceMissingRtn,
                Some(meta.entry + meta.len - 1),
                Some(sid),
                format!("slice {} body ends in RTN for slice {}", sid, slice.0),
            ),
            _ => self.emit(
                DiagnosticKind::SliceMissingRtn,
                Some(meta.entry + meta.len - 1),
                Some(sid),
                format!("slice {sid} body does not end in RTN"),
            ),
        }

        self.check_plans(idx);
        self.check_leaves(idx);

        let compute_len = meta.compute_len();
        if compute_len > self.opts.sfile_capacity {
            self.emit(
                DiagnosticKind::SfilePressure,
                Some(meta.entry),
                Some(sid),
                format!(
                    "{} compute instructions exceed the {}-entry SFile; the runtime will always fall back",
                    compute_len, self.opts.sfile_capacity
                ),
            );
        }

        // Hist keys must index into the checkpoint table: the runtime can
        // neither record nor look up a key past its capacity.
        for key in meta.hist_keys() {
            if key as usize >= self.opts.hist_capacity {
                self.emit(
                    DiagnosticKind::HistKeyOutOfRange,
                    Some(meta.entry),
                    Some(sid),
                    format!(
                        "Hist key {} is outside the {}-entry checkpoint table",
                        key, self.opts.hist_capacity
                    ),
                );
            }
        }

        rcmp_ok
    }

    /// Operand plans against the body instructions (§3.5 leaf/interior
    /// annotation): shape agreement, producer ordering, root register.
    fn check_plans(&mut self, idx: usize) {
        let p = self.program;
        let meta = &p.slices[idx];
        let sid = meta.id.0;
        let compute_len = meta.compute_len();
        if meta.plans.len() != compute_len {
            self.emit(
                DiagnosticKind::OperandPlanMismatch,
                Some(meta.entry),
                Some(sid),
                format!(
                    "{} operand plans for {} compute instructions",
                    meta.plans.len(),
                    compute_len
                ),
            );
            return;
        }
        let mut mismatches = Vec::new();
        for (k, plan) in meta.plans.iter().enumerate() {
            let inst = &p.instructions[meta.entry + k];
            let srcs = inst.srcs();
            for (j, (src, planned)) in srcs.iter().zip(plan.sources.iter()).enumerate() {
                if src.is_some() != planned.is_some() {
                    mismatches.push(format!("inst {k} operand {j} presence"));
                }
            }
            for src in plan.sources.iter().flatten() {
                if let amnesiac_isa::OperandSource::SFile { producer } = src {
                    if *producer as usize >= k {
                        mismatches.push(format!(
                            "inst {k} reads SFile producer {producer} at or after itself"
                        ));
                    }
                }
            }
        }
        if compute_len > 0 {
            let root = &p.instructions[meta.entry + compute_len - 1];
            if root.dst() != Some(meta.root_reg) {
                mismatches.push(format!(
                    "root register {:?} is not the last compute destination {:?}",
                    meta.root_reg,
                    root.dst()
                ));
            }
        }
        for m in mismatches {
            self.emit(
                DiagnosticKind::OperandPlanMismatch,
                Some(meta.entry),
                Some(sid),
                m,
            );
        }
    }

    /// Leaf table against the plans: the leaf set must cover exactly the
    /// instructions with no in-slice producers, with faithful `needs_hist`.
    fn check_leaves(&mut self, idx: usize) {
        let p = self.program;
        let meta = &p.slices[idx];
        let sid = meta.id.0;
        let compute_len = meta.compute_len();
        if meta.plans.len() != compute_len {
            return; // already diagnosed as OperandPlanMismatch
        }
        let mut listed = BTreeSet::new();
        for leaf in &meta.leaves {
            let k = leaf.index as usize;
            if k >= compute_len {
                self.emit(
                    DiagnosticKind::LeafNotCovered,
                    Some(meta.entry),
                    Some(sid),
                    format!("leaf index {k} is outside the {compute_len}-instruction body"),
                );
                continue;
            }
            listed.insert(k);
            if !meta.plans[k].is_leaf() {
                self.emit(
                    DiagnosticKind::LeafNotCovered,
                    Some(meta.entry + k),
                    Some(sid),
                    format!("instruction {k} is listed as a leaf but reads the SFile"),
                );
            }
            if leaf.needs_hist != meta.plans[k].reads_hist() {
                self.emit(
                    DiagnosticKind::LeafNotCovered,
                    Some(meta.entry + k),
                    Some(sid),
                    format!(
                        "leaf {k} declares needs_hist={} but its plan says {}",
                        leaf.needs_hist,
                        meta.plans[k].reads_hist()
                    ),
                );
            }
            if let Some(origin) = leaf.origin_pc {
                if origin >= self.code_len {
                    self.emit(
                        DiagnosticKind::LeafNotCovered,
                        Some(meta.entry + k),
                        Some(sid),
                        format!("leaf {k} origin pc {origin} is outside the main code"),
                    );
                }
            }
        }
        for (k, plan) in meta.plans.iter().enumerate() {
            if plan.is_leaf() && !listed.contains(&k) {
                self.emit(
                    DiagnosticKind::LeafNotCovered,
                    Some(meta.entry + k),
                    Some(sid),
                    format!("instruction {k} has no in-slice producers but is missing from the leaf table"),
                );
            }
        }
    }

    /// Path-sensitive `REC` coverage: every `Hist`-sourced operand of a
    /// reachable `RCMP` must be checkpointed on all paths (invariant 3),
    /// and unreachable `RCMP`s make their slices dead weight.
    fn check_rec_coverage(
        &mut self,
        decoded: &[amnesiac_isa::DecodedInst],
        cfg: &Cfg,
        coverage: &RecCoverage,
        bound: &[bool],
        analysis: Option<&amnesiac_absint::Analysis>,
    ) {
        for (idx, meta) in self.program.slices.iter().enumerate() {
            if !bound.get(idx).copied().unwrap_or(false) {
                continue; // no sound RCMP to anchor the path analysis on
            }
            let sid = meta.id.0;
            if !cfg.is_reachable_pc(meta.rcmp_pc) {
                self.emit(
                    DiagnosticKind::UnreachableSlice,
                    Some(meta.rcmp_pc),
                    Some(sid),
                    format!(
                        "owning RCMP at pc {} is unreachable from the entry",
                        meta.rcmp_pc
                    ),
                );
                continue;
            }
            for key in meta.hist_keys() {
                let sites = coverage.sites(key);
                if sites.is_empty() {
                    self.emit(
                        DiagnosticKind::UncheckpointedHist,
                        Some(meta.rcmp_pc),
                        Some(sid),
                        format!(
                            "Hist-sourced operand @{key} has no reachable REC in the main code"
                        ),
                    );
                    continue;
                }
                // Single checkpoint site: coverage is exactly dominance of
                // the REC over the RCMP. Multiple sites: the general
                // must-reach result.
                let covered = match sites {
                    [only] => cfg.dominates_pc(*only, meta.rcmp_pc),
                    _ => coverage.covered_at(decoded, cfg, meta.rcmp_pc, key),
                };
                if !covered {
                    // The uncovered path may be statically infeasible: the
                    // zero-trip analysis prunes branch edges that cannot be
                    // taken on first traversal (e.g. a counted loop's guard
                    // skipping a body that must run at least once). If some
                    // REC still must-passes on every feasible path, the
                    // Hist entry is recorded before the RCMP can fire and
                    // the warning is a benign artefact of path-insensitive
                    // dominance.
                    let explained = analysis.and_then(|a| {
                        let rb = a.cfg.block_of_pc(meta.rcmp_pc)?;
                        sites.iter().find_map(|&s_pc| {
                            let sb = a.cfg.block_of_pc(s_pc)?;
                            let first = a.zerotrip.must_pass(&a.cfg, sb, rb)
                                && (sb != rb || s_pc < meta.rcmp_pc);
                            first.then(|| {
                                format!(
                                    "zero-trip analysis proves the REC at pc {s_pc} executes \
                                     before the RCMP on every feasible path; the uncovered \
                                     paths cannot be taken"
                                )
                            })
                        })
                    });
                    self.emit_explained(
                        DiagnosticKind::RecNotDominating,
                        Some(meta.rcmp_pc),
                        Some(sid),
                        format!(
                            "REC @{key} (pc {:?}) does not cover every path to the RCMP at pc {}; uncovered paths miss in Hist and fall back to the load",
                            sites, meta.rcmp_pc
                        ),
                        explained,
                    );
                }
            }
        }
    }

    /// Abstract-interpretation findings per slice: dead body compute,
    /// constant-foldable recomputation, provable divergence from the loaded
    /// value, and a liveness-based `SFile` overflow proof.
    fn check_absint(&mut self, analysis: &mut amnesiac_absint::Analysis, bound: &[bool]) {
        let reports = analysis.slice_reports(self.program);
        for report in &reports {
            let idx = report.slice as usize;
            if !bound.get(idx).copied().unwrap_or(false) {
                continue; // structurally broken slices get no derived facts
            }
            let Some(meta) = self.program.slices.get(idx) else {
                continue;
            };
            let sid = meta.id.0;
            if !report.dead_producers.is_empty() {
                self.emit(
                    DiagnosticKind::DeadSliceCompute,
                    Some(meta.entry),
                    Some(sid),
                    format!(
                        "body instruction(s) {:?} produce values nothing consumes",
                        report.dead_producers
                    ),
                );
            }
            if report.peak_sfile > self.opts.sfile_capacity {
                self.emit(
                    DiagnosticKind::SfileOverflow,
                    Some(meta.entry),
                    Some(sid),
                    format!(
                        "body needs {} concurrently live SFile slots, the file has {}",
                        report.peak_sfile, self.opts.sfile_capacity
                    ),
                );
            }
            if let Some(c) = report.recomputed_const {
                if meta.compute_len() > 1 {
                    self.emit(
                        DiagnosticKind::ConstantFoldableSlice,
                        Some(meta.entry),
                        Some(sid),
                        format!(
                            "the {}-instruction recomputation always yields {c}; a single \
                             immediate would do",
                            meta.compute_len()
                        ),
                    );
                }
            }
            if let Some((c, lo, hi)) = report.divergent {
                self.emit(
                    DiagnosticKind::RcmpDivergent,
                    Some(meta.rcmp_pc),
                    Some(sid),
                    format!(
                        "recomputation always yields {c}, but the loaded address can only \
                         hold values in [{lo}, {hi}]; every firing diverges and wastes the \
                         traversal"
                    ),
                );
            }
        }
    }

    /// `REC` keys must be consistent with the slice metadata: a checkpoint
    /// nobody reads is dead `Hist` traffic.
    fn check_orphan_recs(&mut self, coverage: &RecCoverage) {
        let used: BTreeSet<u16> = self
            .program
            .slices
            .iter()
            .flat_map(|m| m.hist_keys())
            .collect();
        let orphans: Vec<(u16, Vec<usize>)> = coverage
            .site_map()
            .filter(|(k, _)| !used.contains(k))
            .map(|(k, sites)| (k, sites.to_vec()))
            .collect();
        for (key, sites) in orphans {
            for pc in sites {
                self.emit(
                    DiagnosticKind::RecKeyOrphan,
                    Some(pc),
                    None,
                    format!("REC @{key} checkpoints a key no slice reads"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{
        AluOp, Instruction, LeafInfo, OperandPlan, OperandSource, Reg, SliceId, SliceMeta,
    };

    /// A minimal clean annotated program:
    ///
    /// ```text
    /// 0: Li   r1, 5
    /// 1: Rec  @0 (r1, r1)        ; checkpoint before the origin
    /// 2: Alu  r2 = r1 + r1       ; origin of the stored value
    /// 3: Store r2 -> [r0 + 100]
    /// 4: Rcmp r3 <- [r0 + 100] | slice 0
    /// 5: Halt
    /// 6: Alu  r2 = Hist@0 + Hist@0   ; slice 0 body (replica of pc 2)
    /// 7: Rtn  slice 0
    /// ```
    fn fixture() -> Program {
        let mut p = Program::new("verify-fixture");
        p.instructions = vec![
            Instruction::Li {
                dst: Reg(1),
                imm: 5,
            },
            Instruction::Rec {
                key: 0,
                srcs: [Some(Reg(1)), Some(Reg(1)), None],
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                lhs: Reg(1),
                rhs: Reg(1),
            },
            Instruction::Store {
                src: Reg(2),
                base: Reg(0),
                offset: 100,
            },
            Instruction::Rcmp {
                dst: Reg(3),
                base: Reg(0),
                offset: 100,
                slice: SliceId(0),
            },
            Instruction::Halt,
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                lhs: Reg(1),
                rhs: Reg(1),
            },
            Instruction::Rtn { slice: SliceId(0) },
        ];
        p.code_len = 6;
        p.slices = vec![SliceMeta {
            id: SliceId(0),
            rcmp_pc: 4,
            entry: 6,
            len: 2,
            root_reg: Reg(2),
            plans: vec![OperandPlan {
                sources: [
                    Some(OperandSource::Hist { key: 0 }),
                    Some(OperandSource::Hist { key: 0 }),
                    None,
                ],
            }],
            leaves: vec![LeafInfo {
                index: 0,
                needs_hist: true,
                origin_pc: Some(2),
            }],
            has_nonrecomputable: true,
            est_recompute_nj: 1.0,
            est_load_nj: 2.0,
            height: 1,
        }];
        p
    }

    fn kinds(report: &VerifyReport) -> Vec<DiagnosticKind> {
        report.diagnostics.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_fixture_verifies_clean() {
        let report = verify(&fixture());
        assert!(report.is_clean(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.diagnostics, vec![]);
        assert_eq!(report.slices_checked, 1);
        assert!(report.blocks >= 1);
    }

    #[test]
    fn store_in_body_is_a_side_effect() {
        let mut p = fixture();
        p.instructions[6] = Instruction::Store {
            src: Reg(2),
            base: Reg(0),
            offset: 100,
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::SliceSideEffect));
        assert!(!report.is_clean());
    }

    #[test]
    fn missing_rtn_is_flagged() {
        let mut p = fixture();
        p.instructions[7] = Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            lhs: Reg(1),
            rhs: Reg(1),
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::SliceMissingRtn));
    }

    #[test]
    fn wrong_rtn_id_is_flagged() {
        let mut p = fixture();
        p.instructions[7] = Instruction::Rtn { slice: SliceId(3) };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::SliceMissingRtn));
    }

    #[test]
    fn body_escaping_the_stream_is_out_of_bounds() {
        let mut p = fixture();
        p.slices[0].len = 40;
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::SliceOutOfBounds));
    }

    #[test]
    fn retargeted_rcmp_is_flagged() {
        let mut p = fixture();
        p.instructions[4] = Instruction::Rcmp {
            dst: Reg(3),
            base: Reg(0),
            offset: 100,
            slice: SliceId(7),
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::RcmpBadTarget));
    }

    #[test]
    fn plan_count_mismatch_is_flagged() {
        let mut p = fixture();
        p.slices[0].plans.clear();
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::OperandPlanMismatch));
    }

    #[test]
    fn self_referential_producer_is_flagged() {
        let mut p = fixture();
        p.slices[0].plans[0].sources[0] = Some(OperandSource::SFile { producer: 0 });
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::OperandPlanMismatch));
    }

    #[test]
    fn empty_leaf_table_is_flagged() {
        let mut p = fixture();
        p.slices[0].leaves.clear();
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::LeafNotCovered));
    }

    #[test]
    fn deleted_rec_is_uncheckpointed() {
        let mut p = fixture();
        p.instructions[1] = Instruction::Jump { target: 2 };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::UncheckpointedHist));
        assert!(!report.is_clean());
    }

    #[test]
    fn bypassable_rec_warns_not_dominating() {
        // Wrap the REC in a conditional: branch from pc 0 over the REC.
        let mut p = fixture();
        p.instructions[0] = Instruction::Branch {
            cond: amnesiac_isa::BranchCond::Eq,
            lhs: Reg(1),
            rhs: Reg(1),
            target: 2,
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::RecNotDominating));
        assert!(
            report.is_clean(),
            "a bypassable REC degrades gracefully at runtime: {:?}",
            report.diagnostics
        );
        // here the bypass is genuinely takeable, so no benignity proof
        assert!(report.unexplained_warn_count() >= 1);
    }

    #[test]
    fn orphan_rec_warns() {
        let mut p = fixture();
        p.instructions[0] = Instruction::Rec {
            key: 9,
            srcs: [Some(Reg(1)), None, None],
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::RecKeyOrphan));
        assert!(report.is_clean());
    }

    #[test]
    fn sfile_pressure_warns_under_tiny_capacity() {
        let p = fixture();
        // static analysis off: this exercises the structural instruction
        // count alone (the liveness pass would upgrade to SfileOverflow)
        let report = verify_with(
            &p,
            &VerifyOptions {
                sfile_capacity: 0,
                static_analysis: false,
                ..Default::default()
            },
        );
        assert!(report.has_kind(DiagnosticKind::SfilePressure));
        assert!(report.is_clean());
    }

    #[test]
    fn liveness_proof_upgrades_pressure_to_overflow() {
        let p = fixture();
        let report = verify_with(
            &p,
            &VerifyOptions {
                sfile_capacity: 0,
                ..Default::default()
            },
        );
        assert!(report.has_kind(DiagnosticKind::SfilePressure));
        assert!(report.has_kind(DiagnosticKind::SfileOverflow));
        assert!(!report.is_clean(), "the overflow proof is a hard error");
    }

    #[test]
    fn hist_key_past_table_capacity_is_an_error() {
        let p = fixture();
        let report = verify_with(
            &p,
            &VerifyOptions {
                hist_capacity: 0,
                ..Default::default()
            },
        );
        assert!(report.has_kind(DiagnosticKind::HistKeyOutOfRange));
        assert!(!report.is_clean());
        // and the default capacity admits the fixture's key 0
        assert!(verify(&p).is_clean());
    }

    #[test]
    fn mismatched_store_makes_the_slice_provably_divergent() {
        // store r1 (= 5) instead of r2 (= 10): the recomputation folds to
        // 10 but the cell can only ever hold 0 or 5
        let mut p = fixture();
        p.instructions[3] = Instruction::Store {
            src: Reg(1),
            base: Reg(0),
            offset: 100,
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::RcmpDivergent));
        assert!(
            report.is_clean(),
            "divergence costs energy, not correctness"
        );
    }

    /// Extends the fixture body to two compute instructions:
    /// `r2 = Hist@0 + Hist@0; r2 = r2 + r2; Rtn`.
    fn two_inst_fixture() -> Program {
        let mut p = fixture();
        p.instructions[7] = Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            lhs: Reg(2),
            rhs: Reg(2),
        };
        p.instructions.push(Instruction::Rtn { slice: SliceId(0) });
        p.slices[0].len = 3;
        p.slices[0].plans.push(OperandPlan {
            sources: [
                Some(OperandSource::SFile { producer: 0 }),
                Some(OperandSource::SFile { producer: 0 }),
                None,
            ],
        });
        p
    }

    #[test]
    fn multi_instruction_constant_body_warns_foldable() {
        let report = verify(&two_inst_fixture());
        assert!(report.has_kind(DiagnosticKind::ConstantFoldableSlice));
        assert!(report.is_clean());
    }

    #[test]
    fn unconsumed_body_producer_warns_dead_compute() {
        // make the second instruction ignore the first: producer 0 is dead
        let mut p = two_inst_fixture();
        p.slices[0].plans[1] = OperandPlan {
            sources: [
                Some(OperandSource::Hist { key: 0 }),
                Some(OperandSource::Hist { key: 0 }),
                None,
            ],
        };
        p.slices[0].leaves.push(LeafInfo {
            index: 1,
            needs_hist: true,
            origin_pc: Some(2),
        });
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::DeadSliceCompute));
        assert!(report.is_clean());
    }

    #[test]
    fn loop_guarded_rec_warn_is_explained() {
        // The REC sits inside a counted loop that provably runs at least
        // once. Classic dominance sees the zero-trip path around the body;
        // the zero-trip analysis proves that path infeasible, so the
        // coverage warning carries a benignity proof.
        let mut p = Program::new("loop-rec");
        p.instructions = vec![
            Instruction::Li {
                dst: Reg(1),
                imm: 5,
            },
            Instruction::Li {
                dst: Reg(2),
                imm: 0,
            },
            Instruction::Li {
                dst: Reg(3),
                imm: 3,
            },
            Instruction::Branch {
                cond: amnesiac_isa::BranchCond::Geu,
                lhs: Reg(2),
                rhs: Reg(3),
                target: 7,
            },
            Instruction::Rec {
                key: 0,
                srcs: [Some(Reg(1)), Some(Reg(1)), None],
            },
            Instruction::Alui {
                op: AluOp::Add,
                dst: Reg(2),
                src: Reg(2),
                imm: 1,
            },
            Instruction::Jump { target: 3 },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(4),
                lhs: Reg(1),
                rhs: Reg(1),
            },
            Instruction::Store {
                src: Reg(4),
                base: Reg(0),
                offset: 100,
            },
            Instruction::Rcmp {
                dst: Reg(5),
                base: Reg(0),
                offset: 100,
                slice: SliceId(0),
            },
            Instruction::Halt,
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(4),
                lhs: Reg(1),
                rhs: Reg(1),
            },
            Instruction::Rtn { slice: SliceId(0) },
        ];
        p.code_len = 11;
        p.slices = vec![SliceMeta {
            id: SliceId(0),
            rcmp_pc: 9,
            entry: 11,
            len: 2,
            root_reg: Reg(4),
            plans: vec![OperandPlan {
                sources: [
                    Some(OperandSource::Hist { key: 0 }),
                    Some(OperandSource::Hist { key: 0 }),
                    None,
                ],
            }],
            leaves: vec![LeafInfo {
                index: 0,
                needs_hist: true,
                origin_pc: Some(7),
            }],
            has_nonrecomputable: true,
            est_recompute_nj: 1.0,
            est_load_nj: 2.0,
            height: 1,
        }];
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::RecNotDominating));
        assert_eq!(
            report.unexplained_warn_count(),
            0,
            "the zero-trip proof explains the warning: {:?}",
            report.diagnostics
        );
        // without the static analysis, the same warning is unexplained
        let bare = verify_with(
            &p,
            &VerifyOptions {
                static_analysis: false,
                ..Default::default()
            },
        );
        assert!(bare.has_kind(DiagnosticKind::RecNotDominating));
        assert!(bare.unexplained_warn_count() >= 1);
    }

    #[test]
    fn fallthrough_into_slice_region_is_flagged() {
        let mut p = fixture();
        p.instructions[5] = Instruction::Li {
            dst: Reg(9),
            imm: 0,
        };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::MainCodeEntersSliceRegion));
    }

    #[test]
    fn branch_into_slice_region_is_flagged() {
        let mut p = fixture();
        p.instructions[0] = Instruction::Jump { target: 6 };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::MainCodeEntersSliceRegion));
    }

    #[test]
    fn unreachable_rcmp_warns() {
        // Jump straight to the Halt: the RCMP at pc 4 is dead.
        let mut p = fixture();
        p.instructions[3] = Instruction::Jump { target: 5 };
        let report = verify(&p);
        assert!(report.has_kind(DiagnosticKind::UnreachableSlice));
        assert!(report.is_clean());
    }

    #[test]
    fn classic_binary_is_vacuously_clean() {
        let mut p = Program::new("classic");
        p.instructions = vec![
            Instruction::Li {
                dst: Reg(1),
                imm: 1,
            },
            Instruction::Halt,
        ];
        p.code_len = 2;
        let report = verify(&p);
        assert!(report.is_clean());
        assert_eq!(report.slices_checked, 0);
    }

    #[test]
    fn report_json_shape() {
        let mut p = fixture();
        p.instructions[1] = Instruction::Jump { target: 2 };
        let report = verify(&p);
        let j = report.to_json();
        assert_eq!(j.get("clean"), Some(&Json::Bool(false)));
        assert!(j.get("errors").and_then(Json::as_f64).unwrap() >= 1.0);
        let diags = j.get("diagnostics").and_then(Json::as_arr).unwrap();
        assert!(diags
            .iter()
            .any(|d| d.get("kind").and_then(Json::as_str) == Some("uncheckpointed-hist")));
        let text = j.compact();
        let parsed = amnesiac_telemetry::parse(&text).expect("round-trips");
        assert_eq!(parsed.compact(), text);
    }

    #[test]
    fn kinds_have_stable_names_and_severities() {
        use DiagnosticKind::*;
        let all = [
            SliceSideEffect,
            SliceMissingRtn,
            SliceOutOfBounds,
            RcmpBadTarget,
            OperandPlanMismatch,
            LeafNotCovered,
            UncheckpointedHist,
            RecNotDominating,
            RecKeyOrphan,
            SfilePressure,
            MainCodeEntersSliceRegion,
            UnreachableSlice,
            DeadSliceCompute,
            ConstantFoldableSlice,
            RcmpDivergent,
            HistKeyOutOfRange,
            SfileOverflow,
        ];
        let names: BTreeSet<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), all.len(), "names are distinct");
        assert_eq!(
            all.iter()
                .filter(|k| k.severity() == Severity::Error)
                .count(),
            10,
            "ten hard invariants"
        );
    }

    #[test]
    fn diagnostics_are_deterministic() {
        let mut p = fixture();
        p.instructions[1] = Instruction::Jump { target: 2 };
        p.slices[0].leaves.clear();
        let a = kinds(&verify(&p));
        let b = kinds(&verify(&p));
        assert_eq!(a, b);
    }
}
