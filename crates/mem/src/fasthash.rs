//! A fast fixed-key hasher for the simulator's hot integer-keyed maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-map random keys)
//! defends against collision-flooding from untrusted input. The simulator's
//! hot maps — the paged-memory page directory, the profiler's per-address
//! provenance map, the hist register file — are keyed by addresses and ids
//! the simulator itself produces, so that defence buys nothing and costs a
//! full SipHash permutation per probe, *every* load and store of a profiled
//! run. [`FoldHasher`] instead mixes each word with one 128-bit
//! multiply-and-fold (the wyhash/FxHash family), which is 5–10× cheaper and
//! still splits dense integer key ranges across buckets well.
//!
//! Determinism is a feature here: unlike `RandomState`, the hash is the
//! same in every run and process, so map iteration order — where it leaks
//! into anything observable — cannot vary between otherwise identical runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (high-entropy odd number, from splitmix64's
/// golden-gamma family).
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// One 128-bit multiply, folded back to 64 bits by xoring the halves.
#[inline]
fn fold_mul(x: u64, y: u64) -> u64 {
    let wide = u128::from(x) * u128::from(y);
    (wide as u64) ^ ((wide >> 64) as u64)
}

/// A folded-multiply [`Hasher`] for trusted integer-like keys.
///
/// Not DoS-resistant — never use it on attacker-controlled keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FoldHasher {
    state: u64,
}

impl Hasher for FoldHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (derived `Hash` on structs, strings): fold in 8-byte
        // words, then the zero-padded tail. Length is mixed so "ab" + "c"
        // and "a" + "bc" differ even across `write` call boundaries.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
            self.state = fold_mul(self.state ^ w, K);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.state = fold_mul(self.state ^ u64::from_le_bytes(tail), K);
        }
        self.state = fold_mul(self.state ^ bytes.len() as u64, K);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = fold_mul(self.state ^ n, K);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Second multiplicative constant for the independent lane of
/// [`hash128`] (also from splitmix64's output mixing constants).
const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A 128-bit content hash over a sequence of byte chunks — the *one*
/// audited hash implementation shared by the compile-cache content key
/// and the [`FoldHasher`]-backed hot maps (both fold words with
/// [`fold_mul`]).
///
/// Two independent 64-bit lanes run over the same stream with different
/// multipliers and initial states; each chunk is terminated by its
/// length so `["ab","c"]` and `["a","bc"]` hash differently. Like
/// [`FoldHasher`] this is deterministic across runs and processes and
/// **not** DoS-resistant — key only trusted content with it.
#[must_use]
pub fn hash128(chunks: &[&[u8]]) -> u128 {
    let mut lo: u64 = 0x243F_6A88_85A3_08D3; // pi fraction: arbitrary, fixed
    let mut hi: u64 = 0x1319_8A2E_0370_7344;
    for bytes in chunks {
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            let w = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
            lo = fold_mul(lo ^ w, K);
            hi = fold_mul(hi ^ w, K2);
        }
        let rem = words.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            let w = u64::from_le_bytes(tail);
            lo = fold_mul(lo ^ w, K);
            hi = fold_mul(hi ^ w, K2);
        }
        lo = fold_mul(lo ^ bytes.len() as u64, K);
        hi = fold_mul(hi ^ bytes.len() as u64, K2);
    }
    (u128::from(hi) << 64) | u128::from(lo)
}

/// [`std::hash::BuildHasher`] for [`FoldHasher`] (stateless, deterministic).
pub type BuildFoldHasher = BuildHasherDefault<FoldHasher>;

/// A `HashMap` on [`FoldHasher`] — drop-in for default maps on trusted
/// integer keys in simulator hot paths.
pub type FastMap<K, V> = HashMap<K, V, BuildFoldHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildFoldHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"slice"), hash_of(&"slice"));
    }

    #[test]
    fn dense_keys_spread() {
        // consecutive integers must not collide or cluster to one bucket
        let hashes: Vec<u64> = (0u64..1024).map(|k| hash_of(&k)).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "no collisions on dense keys");
        // low bits (bucket index) must vary
        let low_bits: std::collections::HashSet<u64> = hashes.iter().map(|h| h & 0x7f).collect();
        assert!(low_bits.len() > 100, "low bits spread: {}", low_bits.len());
    }

    #[test]
    fn byte_stream_boundaries_matter() {
        let mut a = FoldHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FoldHasher::default();
        b.write(b"a");
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash128_deterministic_and_sensitive() {
        let a = hash128(&[b"program bytes", b"options"]);
        assert_eq!(a, hash128(&[b"program bytes", b"options"]));
        // single-byte mutation flips the key
        assert_ne!(a, hash128(&[b"program bytez", b"options"]));
        // chunk boundaries matter (length-terminated chunks)
        assert_ne!(
            hash128(&[b"ab", b"c"]),
            hash128(&[b"a", b"bc"]),
            "chunk boundary must affect the hash"
        );
        // the two 64-bit lanes are independent: flipping input changes both
        let b = hash128(&[b"program bytes", b"optionz"]);
        assert_ne!(a as u64, b as u64);
        assert_ne!((a >> 64) as u64, (b >> 64) as u64);
        assert_ne!(hash128(&[]), hash128(&[b""]));
    }

    #[test]
    fn fastmap_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..100u64 {
            m.insert(k * 4096, k as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7 * 4096)), Some(&7));
    }
}
