//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, in request order per
//! connection. Requests carry an opaque `id` that is echoed verbatim in
//! the response, so clients that pipeline many requests can correlate
//! them either by order or by id.
//!
//! Request schema (all fields except `verb` optional):
//!
//! ```json
//! {"id": 7, "verb": "compile", "target": "bench:is",
//!  "scale": "test", "timeout_ms": 5000}
//! ```
//!
//! Response schema:
//!
//! ```json
//! {"id": 7, "ok": true,  "verb": "compile", "elapsed_ms": 1.9, "payload": {...}}
//! {"id": 8, "ok": false, "verb": "bench",   "elapsed_ms": 0.1,
//!  "error": {"code": "overloaded", "message": "backlog full (64 requests in flight)"}}
//! ```
//!
//! Error codes are stable strings (see [`code`]); clients dispatch on
//! `error.code`, never on `error.message`.

use amnesiac_telemetry::Json;

/// Protocol version, reported by the `stats` verb. Bump on any
/// incompatible schema change.
pub const PROTOCOL_VERSION: u64 = 1;

/// Stable machine-readable error codes carried in `error.code`.
pub mod code {
    /// The request line was not valid JSON or not a valid request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request was well-formed JSON but asked for something the API
    /// rejects (unknown verb for the handler, missing target, bad scale).
    pub const USAGE: &str = "usage";
    /// The toolchain failed while executing the request (compile error,
    /// unknown benchmark, diverging policy, …).
    pub const TOOL: &str = "tool";
    /// The request did not complete before its deadline. The result, if
    /// the job was already running, is discarded; a still-queued job is
    /// cancelled outright.
    pub const TIMEOUT: &str = "timeout";
    /// The bounded backlog was full; the request was rejected without
    /// being queued. Retry later (backpressure signal).
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining for shutdown and refuses new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The handler panicked or the server hit an unexpected condition.
    pub const INTERNAL: &str = "internal";
}

/// A structured service error: stable code plus human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// One of the [`code`] constants (handlers may add their own).
    pub code: String,
    /// Human-readable detail. Not part of the stable contract.
    pub message: String,
}

impl ServeError {
    /// A service error with the given stable code.
    pub fn new(code: &str, message: impl Into<String>) -> ServeError {
        ServeError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Shorthand for a [`code::BAD_REQUEST`] error.
    pub fn bad_request(message: impl Into<String>) -> ServeError {
        ServeError::new(code::BAD_REQUEST, message)
    }

    /// The `{"code": ..., "message": ...}` object of the wire format.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("code", self.code.as_str())
            .with("message", self.message.as_str())
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServeError {}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Opaque correlation id, echoed verbatim in the response
    /// ([`Json::Null`] when the client sent none).
    pub id: Json,
    /// The verb. `stats` and `shutdown` are handled by the server itself;
    /// everything else goes to the handler.
    pub verb: String,
    /// Program reference (a path or `bench:<name>`), where the verb takes
    /// one.
    pub target: Option<String>,
    /// Workload scale for built-in benchmarks: `"test"` (default) or
    /// `"paper"`.
    pub scale: Option<String>,
    /// Per-request deadline override in milliseconds; the server default
    /// applies when absent.
    pub timeout_ms: Option<u64>,
}

impl Request {
    /// A request with the given verb and no other fields.
    pub fn new(verb: impl Into<String>) -> Request {
        Request {
            id: Json::Null,
            verb: verb.into(),
            target: None,
            scale: None,
            timeout_ms: None,
        }
    }

    /// Sets the correlation id.
    pub fn with_id(mut self, id: impl Into<Json>) -> Request {
        self.id = id.into();
        self
    }

    /// Sets the target program reference.
    pub fn with_target(mut self, target: impl Into<String>) -> Request {
        self.target = Some(target.into());
        self
    }

    /// Sets the workload scale (`"test"` / `"paper"`).
    pub fn with_scale(mut self, scale: impl Into<String>) -> Request {
        self.scale = Some(scale.into());
        self
    }

    /// Sets the per-request deadline in milliseconds.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Request {
        self.timeout_ms = Some(timeout_ms);
        self
    }

    /// The request's wire object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        if self.id != Json::Null {
            obj.set("id", self.id.clone());
        }
        obj.set("verb", self.verb.as_str());
        if let Some(target) = &self.target {
            obj.set("target", target.as_str());
        }
        if let Some(scale) = &self.scale {
            obj.set("scale", scale.as_str());
        }
        if let Some(timeout_ms) = self.timeout_ms {
            obj.set("timeout_ms", timeout_ms);
        }
        obj
    }

    /// Parses a request from its wire object.
    ///
    /// # Errors
    ///
    /// Returns a [`code::BAD_REQUEST`] error when the value is not an
    /// object, `verb` is missing or not a string, any known field has the
    /// wrong type, or an unknown field is present (strict by design: a
    /// misspelled field should fail loudly, not be ignored).
    pub fn from_json(value: &Json) -> Result<Request, ServeError> {
        let Some(fields) = value.as_obj() else {
            return Err(ServeError::bad_request("request must be a JSON object"));
        };
        let mut request = Request::new(String::new());
        let mut saw_verb = false;
        for (key, field) in fields {
            match key.as_str() {
                "id" => request.id = field.clone(),
                "verb" => match field.as_str() {
                    Some(verb) => {
                        request.verb = verb.to_string();
                        saw_verb = true;
                    }
                    None => return Err(ServeError::bad_request("`verb` must be a string")),
                },
                "target" => match field.as_str() {
                    Some(target) => request.target = Some(target.to_string()),
                    None => return Err(ServeError::bad_request("`target` must be a string")),
                },
                "scale" => match field.as_str() {
                    Some(scale) => request.scale = Some(scale.to_string()),
                    None => return Err(ServeError::bad_request("`scale` must be a string")),
                },
                "timeout_ms" => match field.as_f64() {
                    Some(ms) if ms >= 1.0 && ms.fract() == 0.0 => {
                        request.timeout_ms = Some(ms as u64);
                    }
                    _ => {
                        return Err(ServeError::bad_request(
                            "`timeout_ms` must be a positive integer",
                        ))
                    }
                },
                other => {
                    return Err(ServeError::bad_request(format!(
                        "unknown request field `{other}`"
                    )))
                }
            }
        }
        if !saw_verb {
            return Err(ServeError::bad_request("request is missing `verb`"));
        }
        Ok(request)
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`code::BAD_REQUEST`] error on malformed JSON or a
    /// malformed request object.
    pub fn parse_line(line: &str) -> Result<Request, ServeError> {
        let value = amnesiac_telemetry::parse(line)
            .map_err(|e| ServeError::bad_request(format!("malformed request line: {e}")))?;
        Request::from_json(&value)
    }
}

/// A response line: either a payload or a structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id, echoed verbatim.
    pub id: Json,
    /// The request's verb, echoed.
    pub verb: String,
    /// Wall-clock milliseconds from request receipt to response.
    pub elapsed_ms: f64,
    /// The payload (`ok: true`) or the error (`ok: false`).
    pub result: Result<Json, ServeError>,
}

impl Response {
    /// `true` iff the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The payload of a successful response.
    pub fn payload(&self) -> Option<&Json> {
        self.result.as_ref().ok()
    }

    /// The error of a failed response.
    pub fn error(&self) -> Option<&ServeError> {
        self.result.as_ref().err()
    }

    /// The response's wire object.
    pub fn to_json(&self) -> Json {
        let obj = Json::obj()
            .with("id", self.id.clone())
            .with("ok", self.is_ok())
            .with("verb", self.verb.as_str())
            .with("elapsed_ms", self.elapsed_ms);
        match &self.result {
            Ok(payload) => obj.with("payload", payload.clone()),
            Err(error) => obj.with("error", error.to_json()),
        }
    }

    /// Parses a response from its wire object.
    ///
    /// # Errors
    ///
    /// Returns a [`code::BAD_REQUEST`] error when the object does not
    /// match the response schema.
    pub fn from_json(value: &Json) -> Result<Response, ServeError> {
        let bad = |msg: &str| ServeError::bad_request(format!("malformed response: {msg}"));
        let Some(ok) = value.get("ok").and_then(|v| match v {
            Json::Bool(b) => Some(*b),
            _ => None,
        }) else {
            return Err(bad("missing boolean `ok`"));
        };
        let verb = value
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string `verb`"))?
            .to_string();
        let elapsed_ms = value
            .get("elapsed_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing number `elapsed_ms`"))?;
        let id = value.get("id").cloned().unwrap_or(Json::Null);
        let result = if ok {
            Ok(value
                .get("payload")
                .cloned()
                .ok_or_else(|| bad("ok response without `payload`"))?)
        } else {
            let error = value
                .get("error")
                .ok_or_else(|| bad("error response without `error`"))?;
            let code = error
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("error without string `code`"))?;
            let message = error
                .get("message")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("error without string `message`"))?;
            Err(ServeError::new(code, message))
        };
        Ok(Response {
            id,
            verb,
            elapsed_ms,
            result,
        })
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a [`code::BAD_REQUEST`] error on malformed JSON or a
    /// malformed response object.
    pub fn parse_line(line: &str) -> Result<Response, ServeError> {
        let value = amnesiac_telemetry::parse(line)
            .map_err(|e| ServeError::bad_request(format!("malformed response line: {e}")))?;
        Response::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let request = Request::new("compile")
            .with_id(7u64)
            .with_target("bench:is")
            .with_scale("test")
            .with_timeout_ms(5000);
        let line = request.to_json().compact();
        assert_eq!(Request::parse_line(&line).unwrap(), request);
        // minimal request: just a verb
        let minimal = Request::new("stats");
        assert_eq!(
            Request::parse_line(&minimal.to_json().compact()).unwrap(),
            minimal
        );
    }

    #[test]
    fn request_parser_rejects_malformed_lines() {
        for (line, expect) in [
            ("{", "malformed request line"),
            ("[1,2]", "must be a JSON object"),
            ("{\"target\":\"x\"}", "missing `verb`"),
            ("{\"verb\":7}", "`verb` must be a string"),
            ("{\"verb\":\"run\",\"scale\":1}", "`scale` must be a string"),
            (
                "{\"verb\":\"run\",\"timeout_ms\":0}",
                "`timeout_ms` must be a positive integer",
            ),
            (
                "{\"verb\":\"run\",\"timeout_ms\":1.5}",
                "`timeout_ms` must be a positive integer",
            ),
            ("{\"verb\":\"run\",\"bogus\":1}", "unknown request field"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert_eq!(err.code, code::BAD_REQUEST, "{line}");
            assert!(err.message.contains(expect), "{line}: {}", err.message);
        }
    }

    #[test]
    fn response_round_trips_both_arms() {
        let ok = Response {
            id: Json::Num(3.0),
            verb: "verify".into(),
            elapsed_ms: 1.25,
            result: Ok(Json::obj().with("clean", true)),
        };
        let err = Response {
            id: Json::Null,
            verb: "bench".into(),
            elapsed_ms: 0.5,
            result: Err(ServeError::new(code::OVERLOADED, "backlog full")),
        };
        for response in [ok, err] {
            let line = response.to_json().compact();
            assert_eq!(Response::parse_line(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn response_parser_rejects_malformed_objects() {
        for line in [
            "{}",
            "{\"ok\":true,\"verb\":\"x\",\"elapsed_ms\":1}",
            "{\"ok\":false,\"verb\":\"x\",\"elapsed_ms\":1}",
            "{\"ok\":false,\"verb\":\"x\",\"elapsed_ms\":1,\"error\":{}}",
        ] {
            assert!(Response::parse_line(line).is_err(), "{line}");
        }
    }
}
