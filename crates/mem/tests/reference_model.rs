//! Randomized tests: the set-associative cache must agree with a
//! brute-force reference model under arbitrary access streams. Driven by
//! the deterministic in-repo RNG (fixed seeds, reproducible corpus).

use amnesiac_mem::{AccessKind, Cache, CacheConfig, ServiceLevel};
use amnesiac_mem::{HierarchyConfig, MemoryHierarchy};
use amnesiac_rng::Rng;

const CASES: usize = 192;

/// Brute-force LRU write-back cache: a list of (line_addr, dirty) per set,
/// most-recently-used first.
struct RefCache {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    sets: Vec<Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let n_sets = config.n_sets() as u64;
        RefCache {
            line_bytes: config.line_bytes as u64,
            n_sets,
            ways: config.ways,
            sets: vec![Vec::new(); n_sets as usize],
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.n_sets) as usize
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        let ways = self.ways;
        let line_bytes = self.line_bytes;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&(l, _)| l == line) {
            let (l, dirty) = entries.remove(pos);
            entries.insert(0, (l, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if entries.len() == ways {
            let (victim, dirty) = entries.pop().expect("full set");
            if dirty {
                writeback = Some(victim * line_bytes);
            }
        }
        entries.insert(0, (line, write));
        (false, writeback)
    }

    fn peek(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        self.sets[set].iter().any(|&(l, _)| l == line)
    }
}

fn access_kind(write: bool) -> AccessKind {
    if write {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

fn stream(r: &mut Rng, addr_bound: u64, min_len: usize, max_len: usize) -> Vec<(u64, bool)> {
    (0..r.range_usize(min_len, max_len))
        .map(|_| (r.below(addr_bound), r.bool()))
        .collect()
}

/// Hit/miss, write-back addresses and residency all match the reference
/// model for every prefix of a random access stream.
#[test]
fn cache_matches_reference() {
    let mut r = Rng::seed_from_u64(0xCA);
    for _ in 0..CASES {
        let ops = stream(&mut r, 4096, 1, 400);
        let config = CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        };
        let mut dut = Cache::new(config);
        let mut reference = RefCache::new(config);
        for (i, &(addr, write)) in ops.iter().enumerate() {
            let got = dut.access(addr, access_kind(write));
            let (want_hit, want_wb) = reference.access(addr, write);
            assert_eq!(got.hit, want_hit, "op {i} addr {addr:#x}");
            assert_eq!(got.writeback, want_wb, "op {i} addr {addr:#x}");
        }
        // final residency agrees everywhere touched
        for &(addr, _) in &ops {
            assert_eq!(dut.peek(addr), reference.peek(addr));
        }
    }
}

/// Occupancy never exceeds capacity, and peek never disturbs state
/// (interleaving peeks must not change hit/miss behaviour).
#[test]
fn peek_transparency() {
    let mut r = Rng::seed_from_u64(0xCB);
    for _ in 0..CASES {
        let ops = stream(&mut r, 2048, 1, 200);
        let config = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        };
        let mut plain = Cache::new(config);
        let mut peeked = Cache::new(config);
        for &(addr, write) in &ops {
            // interleave heavy peeking on one of the two caches
            for probe in [0u64, 64, 128, addr] {
                let _ = peeked.peek(probe);
            }
            let a = plain.access(addr, access_kind(write));
            let b = peeked.access(addr, access_kind(write));
            assert_eq!(a, b);
            assert!(plain.valid_lines() <= 4);
        }
    }
}

/// The full hierarchy never reports a nearer level than where the line
/// actually is, and peek agrees with a subsequent read's service level.
#[test]
fn hierarchy_peek_predicts_read_level() {
    let mut r = Rng::seed_from_u64(0xCC);
    for _ in 0..CASES {
        let ops = stream(&mut r, 8192, 1, 300);
        let mut m = MemoryHierarchy::new(HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 128,
                ways: 1,
                line_bytes: 64,
            },
            l1d: CacheConfig {
                size_bytes: 128,
                ways: 1,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            next_line_prefetch: false,
        });
        for &(addr, write) in &ops {
            let predicted = m.peek_data(addr);
            let got = if write {
                m.write_data(addr)
            } else {
                m.read_data(addr)
            };
            assert_eq!(
                got.level, predicted,
                "peek said {predicted:?} but access was serviced at {:?}",
                got.level
            );
        }
        // loads + stores recorded = ops issued
        let s = m.stats();
        assert_eq!(s.loads.total() + s.stores.total(), ops.len() as u64);
    }
}

/// After any access the line is L1-resident.
#[test]
fn accessed_line_becomes_l1_resident() {
    let mut r = Rng::seed_from_u64(0xCD);
    for _ in 0..CASES {
        let mut m = MemoryHierarchy::new(HierarchyConfig::paper());
        for _ in 0..r.range_usize(1, 200) {
            let addr = r.below(8192);
            m.read_data(addr);
            assert_eq!(m.peek_data(addr), ServiceLevel::L1);
        }
    }
}

/// With the next-line prefetcher, every L1 load miss leaves BOTH the
/// accessed line and its successor L1-resident, and the prefetch
/// source level is reported whenever one was issued.
#[test]
fn prefetcher_invariants() {
    let mut r = Rng::seed_from_u64(0xCE);
    for _ in 0..CASES {
        let mut m = MemoryHierarchy::new(HierarchyConfig::paper_with_prefetch());
        let mut issued = 0u64;
        for _ in 0..r.range_usize(1, 200) {
            let addr = r.below(8192);
            let access = m.read_data(addr);
            assert_eq!(m.peek_data(addr), ServiceLevel::L1);
            if access.level != ServiceLevel::L1 {
                assert_eq!(m.peek_data(addr + 64), ServiceLevel::L1);
            }
            if access.prefetch_from.is_some() {
                issued += 1;
                assert!(
                    access.level != ServiceLevel::L1,
                    "prefetches only trigger on misses"
                );
            }
        }
        assert_eq!(m.stats().prefetches, issued);
    }
}
