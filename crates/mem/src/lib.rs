#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-mem
//!
//! Set-associative cache and memory-hierarchy simulator.
//!
//! Models the paper's Table 3 configuration: L1-I 32 KB 4-way, L1-D 32 KB
//! 8-way (LRU, write-back), a unified L2 of 512 KB 8-way (LRU, write-back),
//! and main memory. The hierarchy reports at which level each access was
//! serviced ([`ServiceLevel`]); energy and latency conversion lives in
//! `amnesiac-energy`.
//!
//! Two access surfaces matter for amnesic execution:
//!
//! * [`MemoryHierarchy::read_data`] / [`MemoryHierarchy::write_data`] /
//!   [`MemoryHierarchy::fetch_inst`] — state-changing accesses used by the
//!   simulator;
//! * [`MemoryHierarchy::peek_data`] — a side-effect-free residency query used
//!   by the `Oracle` and `C-Oracle` policies and by cache *probes* under the
//!   `FLC`/`LLC` policies. A probe only checks tags; it does not fill lines
//!   or touch LRU state, so skipped loads genuinely forgo their locality
//!   benefit (the temporal-locality degradation discussed in the paper §5).
//!
//! ```
//! use amnesiac_mem::{MemoryHierarchy, HierarchyConfig, ServiceLevel};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::paper());
//! // cold miss goes to main memory …
//! assert_eq!(mem.read_data(0x1000).level, ServiceLevel::Mem);
//! // … and is then L1-resident.
//! assert_eq!(mem.read_data(0x1000).level, ServiceLevel::L1);
//! ```

mod cache;
mod fasthash;
mod hierarchy;
mod paged;
mod stats;

pub use cache::{AccessKind, Cache, CacheConfig};
pub use fasthash::{hash128, BuildFoldHasher, FastMap, FoldHasher};
pub use hierarchy::{Access, HierarchyConfig, MemoryHierarchy};
pub use paged::{PagedMem, PAGE_SHIFT, PAGE_WORDS};
pub use stats::{HierarchyStats, LevelStats};

/// The level of the memory hierarchy that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// First-level cache (L1-D for data, L1-I for instructions).
    L1,
    /// Unified second-level cache.
    L2,
    /// Main memory (off-chip).
    Mem,
}

impl ServiceLevel {
    /// All levels, nearest first.
    pub const ALL: [ServiceLevel; 3] = [ServiceLevel::L1, ServiceLevel::L2, ServiceLevel::Mem];

    /// Stable index (0 = L1, 1 = L2, 2 = Mem) for array-indexed statistics.
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::Mem => 2,
        }
    }
}

impl std::fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceLevel::L1 => write!(f, "L1"),
            ServiceLevel::L2 => write!(f, "L2"),
            ServiceLevel::Mem => write!(f, "Mem"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_level_ordering_and_index() {
        assert!(ServiceLevel::L1 < ServiceLevel::L2);
        assert!(ServiceLevel::L2 < ServiceLevel::Mem);
        assert_eq!(ServiceLevel::L1.index(), 0);
        assert_eq!(ServiceLevel::L2.index(), 1);
        assert_eq!(ServiceLevel::Mem.index(), 2);
        assert_eq!(ServiceLevel::ALL.len(), 3);
        assert_eq!(ServiceLevel::Mem.to_string(), "Mem");
    }
}
