//! The consistent-hash ring that places routing keys on workers.
//!
//! Each worker contributes [`REPLICAS`] virtual points on a 64-bit
//! ring; a key is owned by the first point clockwise from its hash.
//! Placement is a pure function of the member set, so every router
//! instance (and every rebuild) agrees; and removing a worker moves
//! only the keys that worker owned — the survivors' points do not move,
//! which is the whole reason to prefer a ring over `hash % N`.

/// A worker's identity inside one cluster: its join index. Stable for
/// the life of the router — a worker that dies keeps its id (marked
/// down), so ids in logs and `hops` labels never get reused.
pub type WorkerId = u64;

/// Virtual points per worker. More points flatten the arc-length
/// variance (uniformity error shrinks like `1/sqrt(REPLICAS)`); 512
/// holds the 33-benchmark deployment within 15% of ideal on a 3-worker
/// cluster, while keeping rebuilds trivially cheap (a few thousand
/// point sorts).
pub const REPLICAS: usize = 512;

/// FNV-1a over the key bytes — cheap, dependency-free, and good enough
/// once finished with a strong mixer.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer: drives the avalanche the plain FNV multiply
/// lacks, so nearby keys (`bench:is` / `bench:ep`) land far apart.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The position of a routing key on the ring.
pub fn hash_key(key: &str) -> u64 {
    splitmix64(fnv1a64(key.as_bytes()))
}

/// An immutable placement ring over a set of workers. Rebuilt from the
/// membership view whenever the member set changes (generations).
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(point, owner)` sorted by point.
    points: Vec<(u64, WorkerId)>,
}

impl Ring {
    /// Builds the ring for a member set. Order does not matter: the
    /// points depend only on each worker's id.
    pub fn build(workers: &[WorkerId]) -> Ring {
        let mut points = Vec::with_capacity(workers.len() * REPLICAS);
        for &worker in workers {
            let base = splitmix64(worker.wrapping_mul(0xa076_1d64_78bd_642f));
            for replica in 0..REPLICAS as u64 {
                points.push((splitmix64(base ^ splitmix64(replica)), worker));
            }
        }
        points.sort_unstable();
        // 64-bit point collisions across members are vanishingly rare;
        // dedup keeps the first owner deterministically if one happens.
        points.dedup_by_key(|p| p.0);
        Ring { points }
    }

    /// The worker owning `key`: the first point at or clockwise after
    /// the key's hash. `None` only for an empty ring.
    pub fn route(&self, key: &str) -> Option<WorkerId> {
        if self.points.is_empty() {
            return None;
        }
        let hash = hash_key(key);
        let index = self.points.partition_point(|&(point, _)| point < hash);
        let index = if index == self.points.len() { 0 } else { index };
        Some(self.points[index].1)
    }

    /// `true` when no worker contributes points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total virtual points (≈ members × [`REPLICAS`]).
    pub fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nowhere() {
        assert_eq!(Ring::build(&[]).route("bench:is"), None);
        assert!(Ring::build(&[]).is_empty());
    }

    #[test]
    fn single_worker_owns_everything() {
        let ring = Ring::build(&[7]);
        for key in ["bench:is", "bench:ep", "experiments", ""] {
            assert_eq!(ring.route(key), Some(7));
        }
        assert_eq!(ring.len(), REPLICAS);
    }

    #[test]
    fn build_is_order_independent() {
        let a = Ring::build(&[0, 1, 2]);
        let b = Ring::build(&[2, 0, 1]);
        for i in 0..200u32 {
            let key = format!("key-{i}");
            assert_eq!(a.route(&key), b.route(&key), "{key}");
        }
    }
}
