//! Regenerates every table and figure of the paper in one run.
use amnesiac_experiments::{
    ablations, fig3, fig6, fig7, fig8, table1, table2, table3, table4, table5, table6, EvalSuite,
};
use amnesiac_workloads::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    };
    println!("{}", table1::render());
    println!("{}", table2::render());
    println!("{}", table3::render());
    let suite = EvalSuite::compute(scale);
    println!("{}", fig3::render(&suite));
    println!("{}", fig3::render_energy(&suite));
    println!("{}", fig3::render_time(&suite));
    println!("{}", table4::render(&suite));
    println!("{}", table5::render(&suite));
    println!("{}", fig6::render(&suite));
    println!("{}", fig7::render(&suite));
    println!("{}", fig8::render(&suite));
    println!("{}", ablations::store_elision(&suite));
    println!("{}", table6::render(scale));
    let controls = EvalSuite::compute_controls(scale);
    println!("Controls (the paper's non-responders):");
    println!("{}", fig3::render(&controls));
}
