//! Randomized tests pinning the ISA's functional semantics to independent
//! Rust reference expressions (so a regression in `apply` cannot hide).
//!
//! Formerly `proptest`-based; now driven by the in-repo deterministic
//! [`amnesiac_rng::Rng`] over a fixed seed plus explicit edge cases, so the
//! corpus is reproducible and the workspace stays dependency-free.

use amnesiac_isa::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp};
use amnesiac_rng::{f64_edge_cases, Rng, U64_EDGE_CASES};

const CASES: usize = 512;

/// Every (a, b) pair fed to the integer checks: uniform draws plus the
/// cross-product of the edge values.
fn u64_pairs() -> Vec<(u64, u64)> {
    let mut r = Rng::seed_from_u64(0xA141);
    let mut pairs: Vec<(u64, u64)> = (0..CASES).map(|_| (r.next_u64(), r.next_u64())).collect();
    for &a in &U64_EDGE_CASES {
        for &b in &U64_EDGE_CASES {
            pairs.push((a, b));
        }
    }
    pairs
}

fn f64_pairs() -> Vec<(f64, f64)> {
    let mut r = Rng::seed_from_u64(0xF141);
    let mut pairs: Vec<(f64, f64)> = (0..CASES).map(|_| (r.any_f64(), r.any_f64())).collect();
    for &a in &f64_edge_cases() {
        for &b in &f64_edge_cases() {
            pairs.push((a, b));
        }
    }
    pairs
}

#[test]
fn alu_ops_match_reference() {
    for (a, b) in u64_pairs() {
        assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        assert_eq!(AluOp::Div.apply(a, b), a.checked_div(b).unwrap_or(u64::MAX));
        assert_eq!(AluOp::Rem.apply(a, b), if b == 0 { a } else { a % b });
        assert_eq!(AluOp::And.apply(a, b), a & b);
        assert_eq!(AluOp::Or.apply(a, b), a | b);
        assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        assert_eq!(AluOp::Shl.apply(a, b), a << (b % 64));
        assert_eq!(AluOp::Shr.apply(a, b), a >> (b % 64));
        assert_eq!(AluOp::Slt.apply(a, b), ((a as i64) < (b as i64)) as u64);
        assert_eq!(AluOp::Sltu.apply(a, b), (a < b) as u64);
        assert_eq!(AluOp::Seq.apply(a, b), (a == b) as u64);
        assert_eq!(AluOp::Min.apply(a, b), a.min(b));
        assert_eq!(AluOp::Max.apply(a, b), a.max(b));
    }
}

#[test]
fn branch_conditions_match_reference() {
    for (a, b) in u64_pairs() {
        assert_eq!(BranchCond::Eq.eval(a, b), a == b);
        assert_eq!(BranchCond::Ne.eval(a, b), a != b);
        assert_eq!(BranchCond::Lt.eval(a, b), (a as i64) < (b as i64));
        assert_eq!(BranchCond::Ge.eval(a, b), (a as i64) >= (b as i64));
        assert_eq!(BranchCond::Ltu.eval(a, b), a < b);
        assert_eq!(BranchCond::Geu.eval(a, b), a >= b);
    }
}

#[test]
fn fp_ops_match_reference() {
    for (a, b) in f64_pairs() {
        let (ab, bb) = (a.to_bits(), b.to_bits());
        assert_eq!(FpOp::Add.apply(ab, bb), (a + b).to_bits());
        assert_eq!(FpOp::Sub.apply(ab, bb), (a - b).to_bits());
        assert_eq!(FpOp::Mul.apply(ab, bb), (a * b).to_bits());
        assert_eq!(FpOp::Div.apply(ab, bb), (a / b).to_bits());
        assert_eq!(FpOp::Flt.apply(ab, bb), (a < b) as u64);
        // min/max keep the first operand on NaN — check agreement on
        // non-NaN inputs against the std reference
        if !a.is_nan() && !b.is_nan() {
            assert_eq!(f64::from_bits(FpOp::Min.apply(ab, bb)), a.min(b));
            assert_eq!(f64::from_bits(FpOp::Max.apply(ab, bb)), a.max(b));
        }
    }
}

#[test]
fn fp_unary_and_cvt_match_reference() {
    let mut r = Rng::seed_from_u64(0xC041);
    let values: Vec<(f64, i64)> = (0..CASES)
        .map(|_| (r.any_f64(), r.next_u64() as i64))
        .chain(f64_edge_cases().iter().map(|&a| (a, -3)))
        .collect();
    for (a, n) in values {
        let ab = a.to_bits();
        assert_eq!(FpUnOp::Neg.apply(ab), (-a).to_bits());
        assert_eq!(FpUnOp::Abs.apply(ab), a.abs().to_bits());
        assert_eq!(FpUnOp::Sqrt.apply(ab), a.sqrt().to_bits());
        assert_eq!(CvtKind::I2F.apply(n as u64), (n as f64).to_bits());
        if !a.is_nan() {
            assert_eq!(CvtKind::F2I.apply(ab), (a as i64) as u64);
        } else {
            assert_eq!(CvtKind::F2I.apply(ab), 0);
        }
    }
}

/// Shifts never panic for any operand (the % 64 convention).
#[test]
fn shifts_are_total() {
    for (a, b) in u64_pairs() {
        let _ = AluOp::Shl.apply(a, b);
        let _ = AluOp::Shr.apply(a, b);
    }
}
