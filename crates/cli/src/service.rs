//! The service layer glue: plugs the typed [`crate::run`] core into
//! `amnesiac-serve`.
//!
//! [`serve_handler`] maps wire verbs onto [`Command`]s and returns
//! [`Response::payload_json`] — the same document `--json <dir>` writes
//! — so a socket client and the CLI see identical payloads for the same
//! verb. [`run_serve`] hosts the public service; [`run_serve_smoke`]
//! boots a private server on an ephemeral port and fires a mixed
//! concurrent batch at it, checking every response against the typed
//! core it is supposed to mirror.
//!
//! The loadgen verbs live here too: [`run_loadgen`] boots a private
//! server and drives `amnesiac-loadgen`'s open-loop schedule at it,
//! [`run_loadgen_smoke`] is the CI soak test over that harness, and
//! [`run_bench_compare_serve`] replays a committed `BENCH_serve.json`
//! baseline's exact load and gates the error rate.

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use amnesiac_cache::CompileCache;
use amnesiac_experiments::regress;
use amnesiac_loadgen::{run_against, LoadgenConfig, Mix};
use amnesiac_serve::{code, Client, Handler, Request, Response as WireResponse, ServeError};
use amnesiac_serve::{Server, ServerConfig, StatsHook, WireVerb};
use amnesiac_telemetry::Json;
use amnesiac_workloads::Scale;

use crate::{CliError, Command, Response, Verb};

/// How many concurrent clients the smoke test drives — the acceptance
/// bar is a mixed batch with zero dropped or mismatched responses.
const SMOKE_CLIENTS: usize = 8;

/// The wire-facing brain: parses a [`Request`] into a [`Command`], runs
/// the typed core, and answers with [`Response::payload_json`].
///
/// Exposed verbs: `compile`, `simulate` (alias `run`), `verify`
/// (sweeps the suite when no target is given), `bench` (alias
/// `compare`), `experiments`, plus the read-only `disasm` / `profile` /
/// `trace`. Failure-shaped outcomes (a dirty `verify`) still answer
/// `ok` with the full structured payload; only pipeline faults become
/// error payloads, carrying [`CliError::code`].
pub fn serve_handler() -> Handler {
    serve_handler_with_cache(Arc::new(CompileCache::in_memory()))
}

/// [`serve_handler`] over an externally owned compile cache, so the
/// embedding layer can share one store across the handler, the `stats`
/// hook, and (for `--cache-dir`) a persistent directory.
pub fn serve_handler_with_cache(cache: Arc<CompileCache>) -> Handler {
    Arc::new(move |request: &Request| {
        let command = request_command(request)?;
        let response = crate::run_with_cache(&command, Some(&cache))
            .map_err(|e| ServeError::new(e.code(), e.message()))?;
        Ok(response.payload_json())
    })
}

/// Builds the shared cache for a serve verb: persistent when the command
/// carries `--cache-dir`, memory-only otherwise.
pub(crate) fn serve_cache(command: &Command) -> Result<Arc<CompileCache>, CliError> {
    Ok(Arc::new(match command.cache_dir.as_deref() {
        Some(dir) => CompileCache::persistent(std::path::Path::new(dir))
            .map_err(|e| CliError::Tool(format!("cannot open cache dir `{dir}`: {e}")))?,
        None => CompileCache::in_memory(),
    }))
}

/// The `stats`-payload extension reporting the shared cache's counters.
pub(crate) fn cache_stats_hook(cache: &Arc<CompileCache>) -> Option<StatsHook> {
    let cache = Arc::clone(cache);
    Some(Arc::new(move || {
        Json::obj().with("cache", cache.stats_json())
    }))
}

/// Maps a wire request onto the typed [`Command`] it stands for. The
/// verb vocabulary is the shared [`WireVerb`] enum — the same one the
/// router places with and the load generator draws mixes from — so the
/// three layers cannot drift apart.
pub(crate) fn request_command(request: &Request) -> Result<Command, ServeError> {
    let verb = match request.wire_verb() {
        Some(WireVerb::Compile) => Verb::Compile,
        Some(WireVerb::Simulate | WireVerb::Run) => Verb::Run,
        Some(WireVerb::Verify) => Verb::Verify,
        Some(WireVerb::Lint) => Verb::Lint,
        Some(WireVerb::Bench | WireVerb::Compare) => Verb::Compare,
        Some(WireVerb::Experiments) => Verb::Experiments,
        Some(WireVerb::Disasm) => Verb::Disasm,
        Some(WireVerb::Profile) => Verb::Profile,
        Some(WireVerb::Trace) => Verb::Trace,
        // The lifecycle verbs are the transport's, not the handler's
        // (`stats`/`shutdown` answer inside `amnesiac-serve`; `drain` /
        // `cluster` inside the router), so reaching the handler with one
        // is a usage error, same as an unknown verb.
        Some(WireVerb::Stats | WireVerb::Shutdown | WireVerb::Drain | WireVerb::Cluster) | None => {
            return Err(ServeError::new(
                code::USAGE,
                format!(
                    "unknown verb `{}`; this server answers compile, simulate, \
                     verify, lint, bench, experiments, disasm, profile, and trace",
                    request.verb
                ),
            ))
        }
    };
    let scale = match request.scale.as_deref() {
        None => None,
        Some("test") => Some(Scale::Test),
        Some("paper") => Some(Scale::Paper),
        Some(other) => {
            return Err(ServeError::bad_request(format!(
                "scale `{other}` is neither `test` nor `paper`"
            )))
        }
    };
    let target = request.target.clone();
    if target.is_none() && !matches!(verb, Verb::Verify | Verb::Lint | Verb::Experiments) {
        return Err(ServeError::bad_request(format!(
            "verb `{}` needs a target (a path or `bench:<name>`)",
            request.verb
        )));
    }
    Ok(Command {
        verb,
        target,
        output: None,
        paper_scale: false,
        scale,
        json_dir: None,
        tolerance: None,
        reps: None,
        port: None,
        workers: None,
        backlog: None,
        timeout_ms: None,
        rate: None,
        duration_ms: None,
        seed: None,
        mix: None,
        dispatch: None,
        cache_dir: None,
        cluster: None,
    })
}

/// Builds the server configuration from the serve flags, keeping the
/// crate defaults for anything not given.
fn server_config(command: &Command) -> ServerConfig {
    let mut config = ServerConfig::default();
    if let Some(port) = command.port {
        config.port = port;
    }
    if let Some(workers) = command.workers {
        config.workers = workers;
    }
    if let Some(backlog) = command.backlog {
        config.backlog = backlog;
    }
    if let Some(timeout_ms) = command.timeout_ms {
        config.timeout_ms = timeout_ms;
    }
    config
}

/// The `serve` verb: host the line-protocol service until a `shutdown`
/// request drains it.
pub(crate) fn run_serve(command: &Command) -> Result<Response, CliError> {
    let config = server_config(command);
    let (workers, backlog, timeout_ms) = (config.workers, config.backlog, config.timeout_ms);
    let cache = serve_cache(command)?;
    let mut server = Server::start_with_stats(
        config,
        serve_handler_with_cache(Arc::clone(&cache)),
        cache_stats_hook(&cache),
    )
    .map_err(|e| CliError::Tool(format!("cannot start server: {e}")))?;
    let addr = server.addr();
    println!(
        "amnesiac-serve listening on {addr} ({workers} workers, backlog {backlog}, \
         timeout {timeout_ms} ms) — send {{\"verb\":\"shutdown\"}} to drain and stop"
    );
    std::io::stdout().flush().ok();
    server.join();
    let stats = server.stats_json();
    Ok(Response::Serve {
        addr: addr.to_string(),
        stats,
    })
}

/// One smoke case: the request to put on the wire and the payload the
/// typed core produces for the equivalent command.
pub(crate) struct SmokeCase {
    pub(crate) request: Request,
    pub(crate) expected: Json,
}

/// The mixed batch every smoke client fires: one request per exposed
/// service verb family, all deterministic (no wall-clock fields), so
/// wire payloads must equal the typed core's documents byte for byte.
/// Shared with the cluster smoke test, where the same batch doubles as
/// the v1-parity proof against the router.
pub(crate) fn smoke_cases() -> Result<Vec<SmokeCase>, CliError> {
    let specs: &[(&str, Option<&str>)] = &[
        ("compile", Some("bench:is")),
        ("simulate", Some("bench:sr")),
        ("verify", Some("bench:is")),
        ("bench", Some("bench:is")),
        ("disasm", Some("bench:cg")),
    ];
    let mut cases = Vec::new();
    for (verb, target) in specs {
        let mut request = Request::new(*verb);
        if let Some(target) = target {
            request = request.with_target(*target);
        }
        let command = request_command(&request)
            .map_err(|e| CliError::Tool(format!("smoke case `{verb}`: {e}")))?;
        let expected = crate::run(&command)?.payload_json();
        cases.push(SmokeCase { request, expected });
    }
    Ok(cases)
}

/// Drives one client through the full mixed batch, pipelined; returns a
/// description of every check that failed.
fn smoke_client(addr: SocketAddr, client_id: usize, cases: &[SmokeCase]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return vec![format!("client {client_id}: connect failed: {e}")],
    };
    client.set_read_timeout(Some(Duration::from_secs(300))).ok();
    let requests: Vec<Request> = cases
        .iter()
        .enumerate()
        .map(|(i, case)| {
            case.request
                .clone()
                .with_id(format!("c{client_id}-{i}-{}", case.request.verb))
        })
        .collect();
    let responses: Vec<WireResponse> = match client.batch(&requests) {
        Ok(responses) => responses,
        Err(e) => return vec![format!("client {client_id}: batch failed: {e}")],
    };
    for ((request, response), case) in requests.iter().zip(&responses).zip(cases) {
        let label = format!("client {client_id} verb `{}`", request.verb);
        if response.id != request.id {
            failures.push(format!(
                "{label}: id `{}` echoed as `{}`",
                request.id.compact(),
                response.id.compact()
            ));
            continue;
        }
        match response.payload() {
            Some(payload) if *payload == case.expected => {}
            Some(_) => failures.push(format!("{label}: payload differs from the typed core")),
            None => failures.push(format!(
                "{label}: error response: {}",
                response
                    .error()
                    .map(|e| format!("{} ({})", e.message, e.code))
                    .unwrap_or_default()
            )),
        }
    }
    failures
}

/// The `serve-smoke` verb: an in-process end-to-end self-test — boots a
/// server on an ephemeral port, drives [`SMOKE_CLIENTS`] concurrent
/// clients through a mixed batch, and checks every wire payload against
/// the typed core plus the server's own statistics.
pub(crate) fn run_serve_smoke(command: &Command) -> Result<Response, CliError> {
    let mut config = server_config(command);
    if command.port.is_none() {
        config.port = 0; // ephemeral: never collide with a real service
    }
    if command.timeout_ms.is_none() {
        config.timeout_ms = 300_000; // generous — the deadline path has its own tests
    }
    let cases = smoke_cases()?;
    let cache = serve_cache(command)?;
    let server = Server::start_with_stats(
        config,
        serve_handler_with_cache(Arc::clone(&cache)),
        cache_stats_hook(&cache),
    )
    .map_err(|e| CliError::Tool(format!("cannot start smoke server: {e}")))?;
    let addr = server.addr();

    let mut checks = 0usize;
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SMOKE_CLIENTS)
            .map(|client_id| {
                let cases = &cases;
                scope.spawn(move || smoke_client(addr, client_id, cases))
            })
            .collect();
        for handle in handles {
            checks += cases.len();
            match handle.join() {
                Ok(client_failures) => failures.extend(client_failures),
                Err(_) => failures.push("smoke client thread panicked".to_string()),
            }
        }
    });

    // The per-verb counters must account for every request we sent.
    checks += 1;
    let mut admin = Client::connect(addr)
        .map_err(|e| CliError::Tool(format!("cannot connect stats client: {e}")))?;
    match admin.call(&Request::new("stats").with_id("stats")) {
        Ok(response) => match response.payload() {
            Some(payload) => {
                let compiles = payload
                    .get_path("verbs.compile.requests")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as usize;
                if compiles < SMOKE_CLIENTS {
                    failures.push(format!(
                        "stats: saw {compiles} compile requests, expected at least {SMOKE_CLIENTS}"
                    ));
                }
            }
            None => failures.push("stats request answered with an error".to_string()),
        },
        Err(e) => failures.push(format!("stats request failed: {e}")),
    }

    // Unknown verbs must come back as structured usage errors, not
    // dropped connections.
    checks += 1;
    match admin.call(&Request::new("frobnicate").with_id("bad")) {
        Ok(response) => match response.error() {
            Some(error) if error.code == code::USAGE => {}
            Some(error) => failures.push(format!(
                "unknown verb: expected code `{}`, got `{}`",
                code::USAGE,
                error.code
            )),
            None => failures.push("unknown verb unexpectedly succeeded".to_string()),
        },
        Err(e) => failures.push(format!("unknown-verb request failed: {e}")),
    }

    // Cache-path checks. A repeated identical compile must come back
    // byte-identical on the wire (the second answer is a cache hit), the
    // shared cache must report those hits, and a mutated program must
    // miss instead of falsely sharing the original's artifact.
    checks += 1;
    match repeated_compile_wire_lines(addr) {
        Ok((first, second)) if first == second => {}
        Ok((first, second)) => failures.push(format!(
            "cache hit is not byte-identical on the wire: {} vs {} bytes",
            first.len(),
            second.len()
        )),
        Err(e) => failures.push(format!("repeated-compile check failed: {e}")),
    }
    checks += 1;
    match admin.call(&Request::new("stats").with_id("cache-stats")) {
        Ok(response) => {
            let hits = response
                .payload()
                .and_then(|p| p.get_path("cache.hits"))
                .and_then(Json::as_f64)
                .unwrap_or(-1.0);
            if hits < 1.0 {
                failures.push(format!(
                    "stats: cache.hits is {hits}, expected at least 1 after repeated compiles"
                ));
            }
        }
        Err(e) => failures.push(format!("cache-stats request failed: {e}")),
    }
    checks += 1;
    if let Err(e) = mutated_program_misses(&mut admin) {
        failures.push(e);
    }

    let stats = server.stats_json();
    server.stop();
    Ok(Response::ServeSmoke {
        checks,
        failures,
        stats,
    })
}

/// Fires the same `compile` request (same id and all) twice over one raw
/// TCP connection and returns both serialized response payloads — the
/// wire-level byte-identity probe for cache hits. The envelope's
/// `elapsed_ms` is the one legitimately volatile field, so the probe
/// compares the compact `payload` bytes, not the whole line.
fn repeated_compile_wire_lines(addr: SocketAddr) -> Result<(String, String), CliError> {
    use std::io::{BufRead as _, BufReader};

    let request = Request::new("compile")
        .with_target("bench:is")
        .with_id("twin");
    let line = request.to_json().compact();
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| CliError::Tool(format!("connect: {e}")))?;
    stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Tool(format!("clone stream: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut answers = Vec::new();
    for _ in 0..2 {
        writeln!(writer, "{line}").map_err(|e| CliError::Tool(format!("send: {e}")))?;
        let mut answer = String::new();
        reader
            .read_line(&mut answer)
            .map_err(|e| CliError::Tool(format!("receive: {e}")))?;
        let payload = amnesiac_telemetry::parse(answer.trim_end())
            .map_err(|e| CliError::Tool(format!("parse response: {e}")))?
            .get("payload")
            .map(Json::compact)
            .ok_or_else(|| CliError::Tool("compile response carried no payload".into()))?;
        answers.push(payload);
    }
    let second = answers.pop().expect("two answers");
    let first = answers.pop().expect("two answers");
    Ok((first, second))
}

/// Compiles a temp `.asm` program, mutates one data word, compiles the
/// mutated file, and reports an error string unless the payloads differ —
/// the no-false-sharing probe for the content-addressed key.
fn mutated_program_misses(admin: &mut Client) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("amnesiac-smoke-mutate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mutation check: mkdir: {e}"))?;
    let path = dir.join("probe.asm");
    let source = include_str!("../../../assets/dotprod.asm");
    let mut compile_at = |source: &str| -> Result<Json, String> {
        std::fs::write(&path, source).map_err(|e| format!("mutation check: write: {e}"))?;
        let request = Request::new("compile")
            .with_target(path.to_string_lossy().as_ref())
            .with_id("mutate");
        let response = admin
            .call(&request)
            .map_err(|e| format!("mutation check: call: {e}"))?;
        response
            .payload()
            .cloned()
            .ok_or_else(|| "mutation check: compile answered with an error".to_string())
    };
    let original = compile_at(source)?;
    // shrink the loop bound: the mutated listing and dynamic counts differ
    let mutated_source = source.replace("li r4, 40960", "li r4, 40704");
    if mutated_source == source {
        return Err("mutation check: probe source did not change".to_string());
    }
    let mutated = compile_at(&mutated_source)?;
    let _ = std::fs::remove_dir_all(&dir);
    if original == mutated {
        return Err(
            "mutation check: mutated program produced the original's payload (false sharing)"
                .to_string(),
        );
    }
    Ok(())
}

/// Server tuning for the loadgen verbs' private in-process server.
/// Worker count and backlog are pinned (not derived from the machine)
/// so a committed `BENCH_serve.json` baseline replays against the same
/// service shape everywhere; explicit serve flags still win.
fn loadgen_server_config(command: &Command) -> ServerConfig {
    let mut config = server_config(command);
    if command.workers.is_none() {
        config.workers = 2;
    }
    if command.backlog.is_none() {
        config.backlog = 1024;
    }
    if command.port.is_none() {
        config.port = 0; // ephemeral: never collide with a real service
    }
    config
}

/// Builds the load configuration from the loadgen flags, keeping the
/// crate defaults for anything not given.
pub(crate) fn loadgen_config(command: &Command) -> Result<LoadgenConfig, CliError> {
    let mut config = LoadgenConfig::default();
    if let Some(rate) = command.rate {
        config.rate = rate;
    }
    if let Some(duration_ms) = command.duration_ms {
        config.duration_ms = duration_ms;
    }
    if let Some(seed) = command.seed {
        config.seed = seed;
    }
    if let Some(mix) = command.mix.as_deref() {
        config.mix = Mix::parse(mix).map_err(|e| CliError::Usage(format!("--mix: {e}")))?;
    }
    if let Some(timeout_ms) = command.timeout_ms {
        config.timeout_ms = timeout_ms;
    }
    config.validate().map_err(CliError::Usage)?;
    Ok(config)
}

/// Boots a private server with a shared compile cache, drives `config`'s
/// open-loop load at it twice — a cold burst against the empty cache,
/// then a warm burst replaying the *identical* schedule — and returns the
/// snapshot document for the cold burst with two extra `results` blocks:
/// `cache` (the shared cache's counters after both bursts) and `warm`
/// (the warm burst's outcome). Snapshot schema v4; the comparator keeps
/// accepting v3 baselines, which simply lack the two blocks.
fn drive_loadgen(command: &Command, config: &LoadgenConfig) -> Result<Json, CliError> {
    let cache = serve_cache(command)?;
    let server = Server::start_with_stats(
        loadgen_server_config(command),
        serve_handler_with_cache(Arc::clone(&cache)),
        cache_stats_hook(&cache),
    )
    .map_err(|e| CliError::Tool(format!("cannot start loadgen server: {e}")))?;
    let outcome = (|| {
        let cold = run_against(server.addr(), config)
            .map_err(|e| CliError::Tool(format!("loadgen cold burst failed: {e}")))?;
        let warm = run_against(server.addr(), config)
            .map_err(|e| CliError::Tool(format!("loadgen warm burst failed: {e}")))?;
        Ok((cold, warm))
    })();
    server.stop();
    let (cold, warm) = outcome?;
    let mut snapshot = cold.snapshot(config);
    if let Some(results) = snapshot.get_mut("results") {
        results.set("cache", cache.stats_json());
        results.set(
            "warm",
            Json::obj()
                .with("scheduled", warm.scheduled)
                .with("completed", warm.completed)
                .with("ok", warm.ok)
                .with("protocol_errors", warm.protocol_errors)
                .with("error_rate_pct", warm.error_rate_pct())
                .with("throughput_rps", warm.throughput_rps())
                .with("elapsed_ms", warm.elapsed_ms)
                .with("latency_ms", warm.latency_ms_json()),
        );
    }
    Ok(snapshot)
}

/// The `loadgen` verb: one measured open-loop run against a private
/// in-process server, reported as the snapshot document (which `--json`
/// writes verbatim — commit it as `BENCH_serve.json` to pin a baseline).
/// With `--cluster <n>` the load is driven at a router in front of `n`
/// worker processes instead (see [`crate::cluster`]).
pub(crate) fn run_loadgen(command: &Command) -> Result<Response, CliError> {
    let config = loadgen_config(command)?;
    let snapshot = match command.cluster {
        Some(workers) => crate::cluster::drive_loadgen_cluster(command, &config, workers)?,
        None => drive_loadgen(command, &config)?,
    };
    Ok(Response::Loadgen { snapshot })
}

/// The `loadgen-smoke` verb: a fast in-process soak test. Defaults to a
/// few thousand requests of the cheap verbs at high rate, then a second
/// short burst, asserting zero lost requests, monotone server counters,
/// bounded connection-handle tracking, and a sane latency histogram.
pub(crate) fn run_loadgen_smoke(command: &Command) -> Result<Response, CliError> {
    let mut smoke = command.clone();
    smoke.rate.get_or_insert(2_000.0);
    smoke.duration_ms.get_or_insert(1_500);
    smoke
        .mix
        .get_or_insert_with(|| "stats=4,disasm=2,trace=1".to_string());
    smoke.backlog.get_or_insert(8_192);
    smoke.timeout_ms.get_or_insert(60_000);
    let config = loadgen_config(&smoke)?;

    let cache = serve_cache(&smoke)?;
    let server = Server::start_with_stats(
        loadgen_server_config(&smoke),
        serve_handler_with_cache(Arc::clone(&cache)),
        cache_stats_hook(&cache),
    )
    .map_err(|e| CliError::Tool(format!("cannot start smoke server: {e}")))?;
    let soak = run_against(server.addr(), &config)
        .map_err(|e| CliError::Tool(format!("loadgen soak failed: {e}")))?;
    let stats_after_soak = server.stats_json();
    // a second, smaller burst: counters must only grow, and the first
    // burst's connection handles must get reaped as this one arrives
    let burst_config = LoadgenConfig {
        rate: 500.0,
        duration_ms: 300,
        seed: config.seed.wrapping_add(1),
        ..config.clone()
    };
    let burst = run_against(server.addr(), &burst_config)
        .map_err(|e| CliError::Tool(format!("loadgen burst failed: {e}")))?;
    let stats_after_burst = server.stats_json();
    let tracked = server.tracked_connections();
    server.stop();

    let mut checks = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: String| {
        checks += 1;
        if !ok {
            failures.push(what);
        }
    };

    check(
        soak.scheduled >= 1_000,
        format!("soak too small: {} requests scheduled", soak.scheduled),
    );
    check(
        soak.protocol_errors == 0 && burst.protocol_errors == 0,
        format!(
            "protocol errors: {} in soak, {} in burst",
            soak.protocol_errors, burst.protocol_errors
        ),
    );
    check(
        soak.ok == soak.scheduled && burst.ok == burst.scheduled,
        format!(
            "lost or failed requests: soak {}/{} ok ({:?}), burst {}/{} ok ({:?})",
            soak.ok,
            soak.scheduled,
            soak.errors_by_code,
            burst.ok,
            burst.scheduled,
            burst.errors_by_code
        ),
    );

    // monotone server counters: every verb's request count only grows,
    // and the totals account for both runs exactly
    let verb_requests = |stats: &Json| -> Vec<(String, f64)> {
        stats
            .get("verbs")
            .and_then(Json::as_obj)
            .map(|verbs| {
                verbs
                    .iter()
                    .filter_map(|(verb, v)| {
                        v.get("requests")
                            .and_then(Json::as_f64)
                            .map(|n| (verb.clone(), n))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let first = verb_requests(&stats_after_soak);
    let second = verb_requests(&stats_after_burst);
    let monotone = first.iter().all(|(verb, n_first)| {
        second
            .iter()
            .find(|(v, _)| v == verb)
            .is_some_and(|(_, n_second)| n_second >= n_first)
    });
    check(
        monotone,
        format!("stats counters went backwards: {first:?} then {second:?}"),
    );
    let total_first: f64 = first.iter().map(|(_, n)| n).sum();
    let total_second: f64 = second.iter().map(|(_, n)| n).sum();
    check(
        total_first == soak.scheduled as f64
            && total_second == (soak.scheduled + burst.scheduled) as f64,
        format!(
            "stats totals drifted: {total_first} after soak (sent {}), \
             {total_second} after burst (sent {})",
            soak.scheduled,
            soak.scheduled + burst.scheduled
        ),
    );
    let accept_errors = stats_after_burst
        .get("accept_errors")
        .and_then(Json::as_f64)
        .unwrap_or(-1.0);
    check(
        accept_errors == 0.0,
        format!("acceptor reported {accept_errors} accept errors"),
    );

    // bounded handle tracking: both runs opened connections; finished
    // handles must have been reaped, not accumulated
    check(
        tracked <= config.connections + burst_config.connections,
        format!(
            "connection handles accumulate: {tracked} tracked after two runs \
             of {} + {} connections",
            config.connections, burst_config.connections
        ),
    );

    // histogram sanity over the soak
    let p50 = soak.latency.quantile(0.50);
    let p90 = soak.latency.quantile(0.90);
    let p99 = soak.latency.quantile(0.99);
    let p999 = soak.latency.quantile(0.999);
    check(
        p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= soak.latency.max(),
        format!(
            "latency quantiles out of order: p50 {p50} p90 {p90} p99 {p99} \
             p999 {p999} max {} (µs)",
            soak.latency.max()
        ),
    );
    check(
        soak.latency.count() == soak.ok,
        format!(
            "histogram holds {} samples for {} ok responses",
            soak.latency.count(),
            soak.ok
        ),
    );

    // the repeated disasm targets in the smoke mix must hit the shared
    // cache — the `stats` payload carries the counters via the hook
    let cache_hits = stats_after_burst
        .get_path("cache.hits")
        .and_then(Json::as_f64)
        .unwrap_or(-1.0);
    check(
        cache_hits > 0.0,
        format!("shared cache reported {cache_hits} hits after repeated disasm requests"),
    );

    Ok(Response::LoadgenSmoke {
        checks,
        failures,
        snapshot: soak.snapshot(&config),
    })
}

/// The serve arm of `bench-compare`: replays the committed baseline's
/// exact load config (schedule and all — it is embedded in the
/// snapshot) against a freshly booted server, then gates the error rate
/// while reporting latency deltas as notes.
pub(crate) fn run_bench_compare_serve(
    command: &Command,
    baseline: &Json,
) -> Result<Response, CliError> {
    let config_json = baseline
        .get("config")
        .ok_or_else(|| CliError::Tool("serve baseline has no `config` object".to_string()))?;
    let config = LoadgenConfig::from_json(config_json)
        .map_err(|e| CliError::Tool(format!("serve baseline: {e}")))?;
    let current = drive_loadgen(command, &config)?;
    let tolerance_pp = command.tolerance.unwrap_or(regress::DEFAULT_TOLERANCE_PP);
    let comparison =
        regress::compare_serve(baseline, &current, tolerance_pp).map_err(CliError::Tool)?;
    Ok(Response::BenchCompareServe {
        tolerance_pp,
        comparison,
        current,
    })
}
