//! Ablation studies beyond the paper's headline results, covering the
//! design points DESIGN.md calls out: structure sizing (§5.4), probe cost
//! (the FLC/LLC delimiter, §5.1), dead-store elision (§2), and the
//! technology trend (Table 1 → Table 6 continuation).

use amnesiac_compiler::redundant_stores;
use amnesiac_core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac_energy::EnergyModel;
use amnesiac_sim::CoreConfig;

use crate::pipeline::{BenchEval, EvalSuite};
use crate::report::Table;

/// Re-runs one benchmark's Compiler-policy run with custom structure
/// capacities; returns `(EDP gain %, forced loads, fired)`.
fn run_with_structures(
    bench: &BenchEval,
    energy: &EnergyModel,
    sfile: usize,
    hist: usize,
    ibuff: usize,
) -> (f64, u64, u64) {
    let config = AmnesicConfig {
        core: CoreConfig::with_energy(energy.clone()),
        policy: Policy::Compiler,
        sfile_capacity: sfile,
        hist_capacity: hist,
        ibuff_capacity: ibuff,
        ..AmnesicConfig::paper(Policy::Compiler)
    };
    let result = AmnesicCore::new(config)
        .run(&bench.prob_binary)
        .expect("amnesic run succeeds");
    assert_eq!(
        result.run.final_memory, bench.classic.final_memory,
        "{} diverged under reduced structures",
        bench.name
    );
    let gain = 100.0 * (1.0 - result.edp() / bench.classic.edp());
    let forced = result.stats.per_slice.iter().map(|s| s.forced_loads).sum();
    (gain, forced, result.stats.fired_total())
}

/// §5.4 ablation: how small can `SFile`/`IBuff` get? The paper argues
/// "less than 50 entries … can cover most of the RSlices".
pub fn structure_sizing(suite: &EvalSuite) -> String {
    let sizes = [2usize, 4, 8, 16, 50, 256];
    let mut t = Table::new(&["bench", "2", "4", "8", "16", "50", "256"]);
    for bench in &suite.benches {
        let mut cells = vec![bench.name.to_string()];
        for &size in &sizes {
            let (gain, _, _) = run_with_structures(bench, &suite.energy, size, 600, size);
            cells.push(format!("{gain:+.1}"));
        }
        t.row(cells);
    }
    format!(
        "Ablation: EDP gain (%) under Compiler with SFile = IBuff = N entries \
         (paper §5.4: <50 covers most RSlices)\n\n{}",
        t.render()
    )
}

/// `Hist` capacity sweep: slices with non-recomputable inputs fall back to
/// the load when their `REC` fails (§3.5); correctness must hold at every
/// size.
pub fn hist_sizing(suite: &EvalSuite) -> String {
    let sizes = [0usize, 2, 8, 64, 600];
    let mut t = Table::new(&["bench", "0", "2", "8", "64", "600", "forced@0"]);
    for bench in &suite.benches {
        let mut cells = vec![bench.name.to_string()];
        let mut forced_at_zero = 0;
        for &size in &sizes {
            let (gain, forced, _) = run_with_structures(bench, &suite.energy, 256, size, 256);
            if size == 0 {
                forced_at_zero = forced;
            }
            cells.push(format!("{gain:+.1}"));
        }
        cells.push(forced_at_zero.to_string());
        t.row(cells);
    }
    format!(
        "Ablation: EDP gain (%) under Compiler vs Hist capacity \
         (REC failures force the load, never a wrong value)\n\n{}",
        t.render()
    )
}

/// Probe-cost ablation: the paper blames LLC's shortfall on the L2 tag
/// probe. Scaling probe energy shows the FLC/LLC gap opening.
pub fn probe_cost(suite: &EvalSuite) -> String {
    let factors = [0.0f64, 1.0, 2.0, 4.0];
    let mut t = Table::new(&[
        "bench", "FLC x0", "LLC x0", "FLC x1", "LLC x1", "FLC x2", "LLC x2", "FLC x4", "LLC x4",
    ]);
    for bench in &suite.benches {
        let mut cells = vec![bench.name.to_string()];
        for &factor in &factors {
            for policy in [Policy::Flc, Policy::Llc] {
                let mut energy = suite.energy.clone();
                energy.probe_nj = [energy.probe_nj[0] * factor, energy.probe_nj[1] * factor];
                let config = AmnesicConfig {
                    core: CoreConfig::with_energy(energy),
                    ..AmnesicConfig::paper(policy)
                };
                let result = AmnesicCore::new(config)
                    .run(&bench.prob_binary)
                    .expect("run succeeds");
                let gain = 100.0 * (1.0 - result.edp() / bench.classic.edp());
                cells.push(format!("{gain:+.1}"));
            }
        }
        t.row(cells);
    }
    format!(
        "Ablation: EDP gain (%) of FLC/LLC as tag-probe energy scales \
         (the paper's stated LLC delimiter)\n\n{}",
        t.render()
    )
}

/// The §3.3.1 future-work policy: history-based miss prediction, compared
/// against the paper's probing policies. The predictor pays no probe
/// energy; its cost is mispredictions.
pub fn predictor_policy(suite: &EvalSuite) -> String {
    let mut t = Table::new(&["bench", "FLC EDP%", "LLC EDP%", "Pred EDP%", "mispredict %"]);
    for bench in &suite.benches {
        let run_policy = |policy| {
            let config = AmnesicConfig {
                core: CoreConfig::with_energy(suite.energy.clone()),
                ..AmnesicConfig::paper(policy)
            };
            AmnesicCore::new(config)
                .run(&bench.prob_binary)
                .expect("run succeeds")
        };
        let flc = run_policy(Policy::Flc);
        let llc = run_policy(Policy::Llc);
        let pred = run_policy(Policy::Predictor);
        assert_eq!(
            pred.run.final_memory, bench.classic.final_memory,
            "{}: Predictor diverged",
            bench.name
        );
        let gain =
            |r: &amnesiac_core::AmnesicRunResult| 100.0 * (1.0 - r.edp() / bench.classic.edp());
        let mispredict = if pred.stats.predictions == 0 {
            0.0
        } else {
            100.0 * pred.stats.mispredictions as f64 / pred.stats.predictions as f64
        };
        t.row(vec![
            bench.name.to_string(),
            format!("{:+.1}", gain(&flc)),
            format!("{:+.1}", gain(&llc)),
            format!("{:+.1}", gain(&pred)),
            format!("{mispredict:.2}"),
        ]);
    }
    format!(
        "Extension (§3.3.1 future work): per-site 2-bit miss predictor vs the          probing policies — prediction removes the probe overhead entirely

{}",
        t.render()
    )
}

/// §2 applied: measure the payoff of *actually removing* the redundant
/// stores, under the always-fire envelope (no fallbacks, no memory
/// cross-check).
pub fn store_elision_applied(suite: &EvalSuite) -> String {
    use std::collections::BTreeSet;
    let mut t = Table::new(&[
        "bench",
        "stores removed (dyn)",
        "EDP% annotated",
        "EDP% elided",
    ]);
    for bench in &suite.benches {
        let selected = bench.prob_report.selected_load_pcs();
        let redundant = redundant_stores(&bench.profile, &selected);
        if redundant.is_empty() {
            continue;
        }
        let remove: BTreeSet<usize> = redundant
            .iter()
            .map(|&pc| bench.prob_report.pc_map[pc])
            .collect();
        let elided = amnesiac_compiler::remove_stores(&bench.prob_binary, &remove)
            .expect("elision succeeds");
        let run = |binary: &amnesiac_isa::Program| {
            let config = AmnesicConfig {
                core: CoreConfig::with_energy(suite.energy.clone()),
                check_values: false,
                ..AmnesicConfig::paper(Policy::Compiler)
            };
            AmnesicCore::new(config).run(binary).expect("run succeeds")
        };
        let annotated_run = run(&bench.prob_binary);
        let elided_run = run(&elided);
        let forced: u64 = elided_run
            .stats
            .per_slice
            .iter()
            .map(|s| s.forced_loads)
            .sum();
        assert_eq!(forced, 0, "{}: envelope violated", bench.name);
        assert_eq!(
            elided_run.run.final_memory, bench.classic.final_memory,
            "{}: elided binary diverged",
            bench.name
        );
        t.row(vec![
            bench.name.to_string(),
            format!(
                "{}",
                annotated_run
                    .run
                    .stores
                    .saturating_sub(elided_run.run.stores)
            ),
            format!(
                "{:+.1}",
                100.0 * (1.0 - annotated_run.edp() / bench.classic.edp())
            ),
            format!(
                "{:+.1}",
                100.0 * (1.0 - elided_run.edp() / bench.classic.edp())
            ),
        ]);
    }
    format!(
        "Extension (§2 applied): removing the redundant stores under the          always-fire envelope — the additional gain recomputation unlocks

{}",
        t.render()
    )
}

/// §2's store-elision opportunity: stores whose every profiled consumer
/// was swapped for recomputation.
pub fn store_elision(suite: &EvalSuite) -> String {
    let mut t = Table::new(&[
        "bench",
        "stores (static)",
        "elidable (static)",
        "dyn stores elidable %",
    ]);
    for bench in &suite.benches {
        let selected = bench.prob_report.selected_load_pcs();
        let elidable = redundant_stores(&bench.profile, &selected);
        let dyn_total: u64 = bench.profile.stores.values().map(|s| s.count).sum();
        let dyn_elidable: u64 = elidable
            .iter()
            .map(|pc| bench.profile.stores[pc].count)
            .sum();
        t.row(vec![
            bench.name.to_string(),
            bench.profile.stores.len().to_string(),
            elidable.len().to_string(),
            format!(
                "{:.1}",
                100.0 * dyn_elidable as f64 / dyn_total.max(1) as f64
            ),
        ]);
    }
    format!(
        "Extension (§2): stores made redundant when all their consumer loads \
         are swapped — the memory-footprint reduction opportunity\n\n{}",
        t.render()
    )
}

/// Related-work interaction: does a next-line prefetcher (the classic
/// latency-tolerance alternative, cf. Mowry et al. [28]) erode amnesic
/// execution's advantage? Both the baseline and the amnesic pipeline are
/// re-profiled and re-compiled under the prefetching hierarchy, so the
/// compiler sees the prefetch-improved PrLi.
pub fn prefetch_interaction(suite: &EvalSuite) -> String {
    use amnesiac_compiler::{compile, CompileOptions};
    use amnesiac_mem::HierarchyConfig;
    use amnesiac_profile::profile_program;
    use amnesiac_sim::ClassicCore;

    let mut t = Table::new(&[
        "bench",
        "EDP% amnesic",
        "EDP% prefetch only",
        "EDP% amnesic+prefetch",
    ]);
    for bench in &suite.benches {
        let mut config = CoreConfig::with_energy(suite.energy.clone());
        config.hierarchy = HierarchyConfig::paper_with_prefetch();
        // baseline without prefetch is the suite's classic run
        let classic = &bench.classic;
        let classic_pf = ClassicCore::new(config.clone())
            .run(&bench.program)
            .expect("classic+prefetch runs");
        let (profile_pf, _) =
            profile_program(&bench.program, &config).expect("profiles under prefetch");
        let options = CompileOptions {
            energy: suite.energy.clone(),
            ..CompileOptions::default()
        };
        let (binary_pf, _) =
            compile(&bench.program, &profile_pf, &options).expect("compiles under prefetch");
        let amnesic_pf = AmnesicCore::new(AmnesicConfig {
            core: config,
            ..AmnesicConfig::paper(Policy::Compiler)
        })
        .run(&binary_pf)
        .expect("amnesic+prefetch runs");
        assert_eq!(
            amnesic_pf.run.final_memory, classic.final_memory,
            "{}: prefetch pipeline diverged",
            bench.name
        );
        let amnesic = bench.run(crate::pipeline::PolicyOutcome::Compiler);
        t.row(vec![
            bench.name.to_string(),
            format!("{:+.1}", 100.0 * (1.0 - amnesic.edp() / classic.edp())),
            format!("{:+.1}", 100.0 * (1.0 - classic_pf.edp() / classic.edp())),
            format!("{:+.1}", 100.0 * (1.0 - amnesic_pf.edp() / classic.edp())),
        ]);
    }
    format!(
        "Related-work interaction: next-line prefetching vs amnesic execution          (all columns vs the no-prefetch classic baseline)

{}",
        t.render()
    )
}

/// Footnote-4 future work: recomputation offloaded to a spare core. The
/// traversal's latency is hidden (overlapped), only its energy is paid.
pub fn offload(suite: &EvalSuite) -> String {
    let mut t = Table::new(&["bench", "Compiler EDP%", "Offloaded EDP%"]);
    for bench in &suite.benches {
        let run = |offload: bool| {
            let config = AmnesicConfig {
                core: CoreConfig::with_energy(suite.energy.clone()),
                offload,
                ..AmnesicConfig::paper(Policy::Compiler)
            };
            let result = AmnesicCore::new(config)
                .run(&bench.prob_binary)
                .expect("run succeeds");
            assert_eq!(
                result.run.final_memory, bench.classic.final_memory,
                "{}: offload diverged",
                bench.name
            );
            100.0 * (1.0 - result.edp() / bench.classic.edp())
        };
        t.row(vec![
            bench.name.to_string(),
            format!("{:+.1}", run(false)),
            format!("{:+.1}", run(true)),
        ]);
    }
    format!(
        "Extension (footnote 4): recomputation offloaded to spare/idle cores          — slice latency overlaps with the main thread

{}",
        t.render()
    )
}

/// Technology trend: EDP gain of the Compiler policy as loads get
/// relatively *cheaper* or compute relatively dearer (R sweep both ways) —
/// the forward-looking argument of Table 1.
pub fn technology_trend(suite: &EvalSuite) -> String {
    let factors = [0.25f64, 0.5, 1.0, 2.0, 8.0, 32.0];
    let mut t = Table::new(&["bench", "R/4", "R/2", "R", "2R", "8R", "32R"]);
    for bench in &suite.benches {
        let mut cells = vec![bench.name.to_string()];
        for &factor in &factors {
            let energy = EnergyModel::paper().with_r_factor(factor);
            let config = AmnesicConfig {
                core: CoreConfig::with_energy(energy.clone()),
                ..AmnesicConfig::paper(Policy::Compiler)
            };
            // both sides re-measured under the scaled model
            let classic = amnesiac_sim::ClassicCore::new(CoreConfig::with_energy(energy))
                .run(&bench.program)
                .expect("classic run succeeds");
            let result = AmnesicCore::new(config)
                .run(&bench.prob_binary)
                .expect("run succeeds");
            let gain = 100.0 * (1.0 - result.edp() / classic.edp());
            cells.push(format!("{gain:+.1}"));
        }
        t.row(cells);
    }
    format!(
        "Ablation: Compiler-policy EDP gain (%) as the compute/communication \
         cost ratio scales (technology trend of Table 1; slice set fixed at R)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_workloads::{build_focal, Scale};

    fn tiny_suite() -> EvalSuite {
        EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        }
    }

    #[test]
    fn structure_sizing_preserves_correctness_at_every_size() {
        // run_with_structures asserts output equality internally
        let text = structure_sizing(&tiny_suite());
        assert!(text.contains("is"));
    }

    #[test]
    fn hist_sizing_renders() {
        let text = hist_sizing(&tiny_suite());
        assert!(text.contains("forced@0"));
    }

    #[test]
    fn store_elision_reports_is_buckets() {
        let text = store_elision(&tiny_suite());
        assert!(text.contains("elidable"));
    }
}
