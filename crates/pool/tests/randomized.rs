//! Ordered-result equivalence against a sequential map under randomized
//! task durations — the stealing/claiming machinery must never reorder or
//! drop results, no matter how unevenly the work is distributed.

use amnesiac_pool::Pool;
use amnesiac_rng::Rng;

fn spin(iters: u64) -> u64 {
    let mut acc = iters;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::spin_loop();
    }
    acc
}

#[test]
fn randomized_durations_match_sequential_map() {
    let mut rng = Rng::seed_from_u64(0x9e3779b97f4a7c15);
    for round in 0..4 {
        let threads = 1 + (round % 4);
        let pool = Pool::new(threads);
        let items: Vec<(u64, u64)> = (0..96).map(|index| (index, rng.below(20_000))).collect();
        let expected: Vec<u64> = items
            .iter()
            .map(|&(index, iters)| index.wrapping_add(spin(iters)))
            .collect();
        let got = pool.parallel_map(items, |(index, iters)| index.wrapping_add(spin(iters)));
        assert_eq!(got, expected, "round {round}, {threads} workers");
    }
}

#[test]
fn randomized_item_counts_and_values() {
    let mut rng = Rng::seed_from_u64(42);
    let pool = Pool::new(4);
    for _ in 0..20 {
        let n = rng.below(40) as usize;
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.rotate_left(13) ^ 0xabcd).collect();
        let got = pool.parallel_map(items, |x| x.rotate_left(13) ^ 0xabcd);
        assert_eq!(got, expected);
    }
}
