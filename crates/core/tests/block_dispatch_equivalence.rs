//! Differential suite for the block-level execution engine: under both
//! dispatch modes (`Inst`, the per-instruction oracle, and `Block`, the
//! superblock/superinstruction production path) every interpreter must be
//! byte-identical on architectural state, memory image, observer event
//! streams, energy totals, and error paths — across randomly generated
//! control-flow-heavy programs and the full 33-workload sweep.

use amnesiac_compiler::{compile, replay_validate_with, CompileOptions};
use amnesiac_core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac_isa::{AluOp, BranchCond, Instruction, MemRange, Program, Reg};
use amnesiac_mem::ServiceLevel;
use amnesiac_profile::profile_program;
use amnesiac_rng::Rng;
use amnesiac_sim::{ClassicCore, CoreConfig, Dispatch, Observer, RetireEvent, RunResult};
use amnesiac_workloads::{all_workloads, Scale};

const RNG_PROGRAMS: usize = 64;
const RNG_SEED: u64 = 0xB10C;

/// One owned retirement record: pc, operand values, result, address, level.
type Retired = (
    usize,
    [u64; 3],
    Option<u64>,
    Option<u64>,
    Option<ServiceLevel>,
);

/// Records every retirement the classic core reports, as owned values, so
/// two runs' full dynamic event streams can be compared exactly.
#[derive(Default)]
struct Recorder {
    events: Vec<Retired>,
}

impl Observer for Recorder {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.events.push((
            event.pc,
            event.src_values,
            event.result,
            event.addr,
            event.level,
        ));
    }
}

fn config(dispatch: Dispatch, fuse: u64) -> CoreConfig {
    let mut c = CoreConfig::paper();
    c.dispatch = dispatch;
    c.max_instructions = fuse;
    c
}

fn assert_runs_equal(name: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.instructions, b.instructions, "{name}: instruction count");
    assert_eq!(a.loads, b.loads, "{name}: load count");
    assert_eq!(a.stores, b.stores, "{name}: store count");
    assert_eq!(a.final_memory, b.final_memory, "{name}: memory image");
    assert_eq!(a.hierarchy, b.hierarchy, "{name}: hierarchy stats");
    assert_eq!(a.account, b.account, "{name}: energy account (bit-exact)");
}

/// Runs one program through the classic core under both modes with a
/// recording observer and asserts full equivalence, success or failure.
fn check_classic(name: &str, program: &Program, fuse: u64) {
    let mut oracle_events = Recorder::default();
    let mut block_events = Recorder::default();
    let oracle =
        ClassicCore::new(config(Dispatch::Inst, fuse)).run_observed(program, &mut oracle_events);
    let block =
        ClassicCore::new(config(Dispatch::Block, fuse)).run_observed(program, &mut block_events);
    match (&oracle, &block) {
        (Ok(a), Ok(b)) => assert_runs_equal(name, a, b),
        (Err(a), Err(b)) => assert_eq!(a, b, "{name}: error paths differ"),
        _ => panic!("{name}: one mode failed, the other succeeded: {oracle:?} vs {block:?}"),
    }
    assert_eq!(
        oracle_events.events, block_events.events,
        "{name}: observer event streams differ"
    );
}

/// Runs validation replay under both modes and asserts identical outcomes.
fn check_replay(name: &str, program: &Program, fuse: u64) {
    let oracle = replay_validate_with(program, fuse, Dispatch::Inst);
    let block = replay_validate_with(program, fuse, Dispatch::Block);
    match (&oracle, &block) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.per_slice, b.per_slice, "{name}: replay slice stats");
            assert_eq!(a.output, b.output, "{name}: replay output image");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{name}: replay error paths differ"),
        _ => panic!("{name}: replay modes disagree: {oracle:?} vs {block:?}"),
    }
}

/// Generates a random classic program exercising the block engine's edges:
/// fused pairs, zero-trip loops, backward branches, stores into a declared
/// output window, and (sometimes) a fallthrough off the end of main code
/// into a junk region shaped like slice bodies.
fn rng_program(r: &mut Rng, case: usize) -> Program {
    let n = r.range_usize(4, 40);
    // r0..r6 carry arbitrary data (dense enough to fuse); r7 is the only
    // load/store base and only ever holds small `li` constants, keeping
    // effective addresses inside the data window like a real program
    let reg = |r: &mut Rng| Reg(r.below(7) as u8);
    let alu_ops = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::And];
    let conds = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];
    let mut insts = Vec::with_capacity(n + 2);
    for _ in 0..n {
        let inst = match r.below(10) {
            0 => Instruction::Li {
                dst: Reg(7),
                imm: r.below(64),
            },
            1 => Instruction::Li {
                dst: reg(r),
                imm: r.below(64),
            },
            2 | 3 => Instruction::Alu {
                op: *r.choose(&alu_ops),
                dst: reg(r),
                lhs: reg(r),
                rhs: reg(r),
            },
            4 | 5 => Instruction::Alui {
                op: *r.choose(&alu_ops),
                dst: reg(r),
                src: reg(r),
                imm: r.below(16),
            },
            6 => Instruction::Load {
                dst: reg(r),
                base: Reg(7),
                offset: r.below(8) as i64,
            },
            7 => Instruction::Store {
                src: reg(r),
                base: Reg(7),
                offset: r.below(8) as i64,
            },
            8 => Instruction::Branch {
                cond: *r.choose(&conds),
                lhs: reg(r),
                rhs: reg(r),
                // any main-code target, forward or backward (the fuse
                // bounds runaway loops; both modes must agree on the blow)
                target: r.below((n + 1) as u64) as usize,
            },
            _ => Instruction::Jump {
                target: r.below((n + 1) as u64) as usize,
            },
        };
        insts.push(inst);
    }
    // Half the programs halt cleanly; the rest fall through to code_len,
    // which must yield the same PcOutOfRange in both modes.
    let falls_through = case % 2 == 1;
    if !falls_through {
        insts.push(Instruction::Halt);
    }
    let mut p = Program::new(format!("rng-{case}"));
    p.code_len = insts.len();
    if falls_through {
        // a junk region past code_len, shaped like slice bodies, that the
        // block table must lower without ever dispatching into
        for _ in 0..r.range_usize(1, 4) {
            insts.push(Instruction::Li {
                dst: Reg(1),
                imm: 0xDEAD,
            });
        }
    }
    p.instructions = insts;
    p.entry = 0;
    for a in 0..8 {
        p.data.set(a, r.next_u64() % 64);
    }
    // stores land in [0, 64 + 8); observe the whole window
    p.output.push(MemRange::new(0, 80));
    p
}

#[test]
fn classic_and_replay_agree_on_rng_programs() {
    let mut r = Rng::seed_from_u64(RNG_SEED);
    for case in 0..RNG_PROGRAMS {
        let p = rng_program(&mut r, case);
        // generous fuse: terminating programs finish, loops blow identically
        check_classic(&p.name, &p, 50_000);
        check_replay(&p.name, &p, 50_000);
        // tiny fuse: FuseBlown must fire at the same retirement even when
        // it lands mid-block or between the halves of a fused pair
        for fuse in [1, 2, 3, 7] {
            check_classic(&format!("{}/fuse{}", p.name, fuse), &p, fuse);
            check_replay(&format!("{}/fuse{}", p.name, fuse), &p, fuse);
        }
    }
}

#[test]
fn directed_edge_cases_agree() {
    // A single-instruction block that branches to itself: the degenerate
    // superblock (one leader, one terminator, no fusion) must spin until
    // the fuse blows identically in both modes.
    let mut spin = Program::new("self-branch");
    spin.instructions = vec![
        Instruction::Branch {
            cond: BranchCond::Eq,
            lhs: Reg(0),
            rhs: Reg(0),
            target: 0,
        },
        Instruction::Halt,
    ];
    spin.code_len = 2;
    check_classic("self-branch", &spin, 1_000);
    check_replay("self-branch", &spin, 1_000);

    // A zero-trip loop: the guard skips the body on the first evaluation,
    // so the backward-branch block retires zero times.
    let mut zero_trip = Program::new("zero-trip");
    zero_trip.instructions = vec![
        Instruction::Li {
            dst: Reg(1),
            imm: 0,
        },
        Instruction::Li {
            dst: Reg(2),
            imm: 0,
        },
        // while r1 < r2 (never): body
        Instruction::Branch {
            cond: BranchCond::Geu,
            lhs: Reg(1),
            rhs: Reg(2),
            target: 6,
        },
        Instruction::Alui {
            op: AluOp::Add,
            dst: Reg(1),
            src: Reg(1),
            imm: 1,
        },
        Instruction::Store {
            src: Reg(1),
            base: Reg(0),
            offset: 0,
        },
        Instruction::Jump { target: 2 },
        Instruction::Halt,
    ];
    zero_trip.code_len = 7;
    zero_trip.output.push(MemRange::new(0, 4));
    check_classic("zero-trip", &zero_trip, 1_000);
    check_replay("zero-trip", &zero_trip, 1_000);

    // Fallthrough off the end of main code into the (unreachable) slice
    // region: both modes must report PcOutOfRange at code_len, not run the
    // junk the block table also lowered.
    let mut fall = Program::new("fallthrough");
    fall.instructions = vec![
        Instruction::Li {
            dst: Reg(1),
            imm: 1,
        },
        Instruction::Li {
            dst: Reg(2),
            imm: 9,
        }, // falls through here
        Instruction::Li {
            dst: Reg(3),
            imm: 0xBAD,
        }, // "slice" region
    ];
    fall.code_len = 2;
    check_classic("fallthrough", &fall, 1_000);
    check_replay("fallthrough", &fall, 1_000);
}

#[test]
fn amnesic_pipeline_agrees_across_the_full_sweep() {
    for workload in all_workloads(Scale::Test) {
        let base = CoreConfig::paper();
        let (profile, _) = profile_program(&workload.program, &base).expect("profiling succeeds");
        let (binary, _) = compile(&workload.program, &profile, &CompileOptions::default())
            .expect("compile succeeds");

        // classic interpreter on the source program
        check_classic(
            &format!("{}/classic", workload.name),
            &workload.program,
            base.max_instructions,
        );
        // replay interpreter on the annotated binary (slice traversal rides
        // the same block table)
        check_replay(
            &format!("{}/replay", workload.name),
            &binary,
            base.max_instructions,
        );

        // amnesic interpreter on the annotated binary, per policy
        for policy in [Policy::Compiler, Policy::Llc, Policy::Oracle] {
            let mut inst_cfg = AmnesicConfig::paper(policy);
            inst_cfg.core.dispatch = Dispatch::Inst;
            let mut block_cfg = AmnesicConfig::paper(policy);
            block_cfg.core.dispatch = Dispatch::Block;
            let name = format!("{}/amnesic/{:?}", workload.name, policy);
            let a = AmnesicCore::new(inst_cfg).run(&binary);
            let b = AmnesicCore::new(block_cfg).run(&binary);
            match (&a, &b) {
                (Ok(a), Ok(b)) => {
                    assert_runs_equal(&name, &a.run, &b.run);
                    let (s, t) = (&a.stats, &b.stats);
                    assert_eq!(s.per_slice, t.per_slice, "{name}: per-slice stats");
                    assert_eq!(s.swapped_levels, t.swapped_levels, "{name}: swap profile");
                    assert_eq!(
                        s.performed_levels, t.performed_levels,
                        "{name}: perform profile"
                    );
                    assert_eq!(
                        s.recompute_insts, t.recompute_insts,
                        "{name}: recompute count"
                    );
                    assert_eq!(
                        s.deferred_exceptions, t.deferred_exceptions,
                        "{name}: deferred exceptions"
                    );
                    assert_eq!(
                        (s.sfile_high_water, s.hist_high_water, s.ibuff_high_water),
                        (t.sfile_high_water, t.hist_high_water, t.ibuff_high_water),
                        "{name}: structure high-water marks"
                    );
                    assert_eq!(
                        (
                            s.ibuff_hits,
                            s.ibuff_misses,
                            s.hist_reads,
                            s.hist_failed_writes
                        ),
                        (
                            t.ibuff_hits,
                            t.ibuff_misses,
                            t.hist_reads,
                            t.hist_failed_writes
                        ),
                        "{name}: supply counters"
                    );
                    assert_eq!(
                        (s.rename_requests, s.predictions, s.mispredictions),
                        (t.rename_requests, t.predictions, t.mispredictions),
                        "{name}: rename/prediction counters"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{name}: error paths differ"),
                _ => panic!("{name}: amnesic modes disagree: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn profiler_output_is_dispatch_invariant() {
    // the profiler consumes the observer stream, so its whole profile must
    // be identical under both modes — spot-check via the reg count check
    // plus full profile comparison on a couple of workloads
    for name in ["cg", "is"] {
        let w = amnesiac_workloads::build_focal(name, Scale::Test);
        let inst_cfg = config(Dispatch::Inst, 200_000_000);
        let block_cfg = config(Dispatch::Block, 200_000_000);
        let (a, _) = profile_program(&w.program, &inst_cfg).expect("inst profile");
        let (b, _) = profile_program(&w.program, &block_cfg).expect("block profile");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: profiles differ between dispatch modes"
        );
    }
}
