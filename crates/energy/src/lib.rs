#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-energy
//!
//! Energy-per-instruction (EPI) tables, timing parameters, the
//! technology-scaling model behind the paper's Table 1, and energy/EDP
//! accounting.
//!
//! All dynamic-energy quantities are in **nanojoules**, all times in **core
//! cycles** of the paper's 1.09 GHz machine (Table 3). The headline numbers
//! are taken directly from the paper:
//!
//! | quantity | value |
//! |---|---|
//! | L1 access | 0.88 nJ, 3.66 ns |
//! | L2 access | 7.72 nJ, 24.77 ns |
//! | memory read | 52.14 nJ, 100 ns |
//! | memory write | 62.14 nJ, 100 ns |
//! | mean non-memory EPI | 0.45 nJ |
//!
//! giving the paper's default compute/communication cost ratio
//! `R_default = 0.45 / 52.14 ≈ 0.0086` (§5.5). [`EnergyModel::with_r_factor`]
//! scales every non-memory EPI for the Table 6 break-even sweep.

mod accounting;
mod epi;
mod technology;

pub use accounting::{EnergyAccount, EnergyBreakdown, UarchEvent};
pub use epi::{EnergyModel, EPI_NON_MEM_DEFAULT, R_DEFAULT};
pub use technology::{NodeParams, TechnologyModel, TechnologyPoint};
