//! The classic (baseline) in-order execution engine.

use std::collections::BTreeMap;

use amnesiac_cfg::{BlockTable, Dispatch, Fusion};
use amnesiac_energy::EnergyAccount;
use amnesiac_isa::{predecode, BranchCond, Category, DecodedInst, DecodedOp, Instruction, Program};
use amnesiac_mem::{HierarchyStats, ServiceLevel};
use amnesiac_telemetry::{Json, ToJson};

use crate::machine::{CoreConfig, Machine, RunError};

/// Everything a dynamic-instruction observer can see at retirement.
#[derive(Debug, Clone)]
pub struct RetireEvent<'a> {
    /// Static program counter of the retired instruction.
    pub pc: usize,
    /// The instruction itself.
    pub inst: &'a Instruction,
    /// Source operand values, in [`Instruction::srcs`] order (unused
    /// positions are 0).
    pub src_values: [u64; 3],
    /// Value written to the destination register, if any.
    pub result: Option<u64>,
    /// Effective word address, for loads and stores.
    pub addr: Option<u64>,
    /// Hierarchy level that serviced a load/store.
    pub level: Option<ServiceLevel>,
}

/// Hook invoked at each dynamic instruction retirement; implemented by the
/// profiler in `amnesiac-profile`.
pub trait Observer {
    /// Called after each instruction retires with full dynamic context.
    fn on_retire(&mut self, event: &RetireEvent<'_>);
}

/// An observer that does nothing (zero-cost baseline runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_retire(&mut self, _event: &RetireEvent<'_>) {}
}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        (**self).on_retire(event);
    }
}

/// An observer that renders a human-readable dynamic trace of the first
/// `limit` retirements (pc, instruction, result, memory effects) — the
/// debugging view a `Pin`-style tool would print.
#[derive(Debug, Clone, Default)]
pub struct TraceWriter {
    lines: Vec<String>,
    limit: usize,
    retired: u64,
}

impl TraceWriter {
    /// Creates a tracer keeping at most `limit` lines.
    pub fn new(limit: usize) -> Self {
        TraceWriter {
            lines: Vec::new(),
            limit,
            retired: 0,
        }
    }

    /// The rendered trace, one line per retirement, plus a trailer with
    /// the total dynamic count.
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        if self.retired > self.lines.len() as u64 {
            out.push_str(&format!(
                "… {} further retirements elided\n",
                self.retired - self.lines.len() as u64
            ));
        }
        out
    }

    /// Total retirements observed (beyond the kept lines).
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl Observer for TraceWriter {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.retired += 1;
        if self.lines.len() >= self.limit {
            return;
        }
        let mut line = format!("{:>8} pc {:>5}  {}", self.retired, event.pc, event.inst);
        if let Some(result) = event.result {
            line.push_str(&format!("  => {result:#x}"));
        }
        if let (Some(addr), Some(level)) = (event.addr, event.level) {
            line.push_str(&format!("  [mem {addr:#x} @ {level}]"));
        }
        self.lines.push(line);
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Energy/time account of the whole run.
    pub account: EnergyAccount,
    /// Hierarchy statistics.
    pub hierarchy: HierarchyStats,
    /// Values of the program's declared output ranges at halt, in address
    /// order.
    pub final_memory: BTreeMap<u64, u64>,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
}

impl RunResult {
    /// Energy-delay product of the run, the paper's efficiency metric.
    pub fn edp(&self) -> f64 {
        self.account.edp()
    }
}

impl ToJson for RunResult {
    /// Dynamic counts plus the full energy account and hierarchy stats.
    /// `final_memory` is summarized as its size only (output values are
    /// checked by the equivalence asserts, not reported as telemetry).
    fn to_json(&self) -> Json {
        Json::obj()
            .with("instructions", self.instructions)
            .with("loads", self.loads)
            .with("stores", self.stores)
            .with("output_words", self.final_memory.len())
            .with("account", self.account.to_json())
            .with("hierarchy", self.hierarchy.to_json())
    }
}

/// The classic in-order core.
///
/// Executes un-annotated programs exactly; rejects amnesic instructions
/// (`RCMP`/`RTN`/`REC`) with [`RunError::UnexpectedInstruction`] — the
/// baseline must never silently interpret an annotated binary.
#[derive(Debug, Clone)]
pub struct ClassicCore {
    config: CoreConfig,
}

impl ClassicCore {
    /// Creates a core with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        ClassicCore { config }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Runs `program` to `Halt` with no observer.
    ///
    /// # Errors
    ///
    /// See [`ClassicCore::run_observed`].
    pub fn run(&self, program: &Program) -> Result<RunResult, RunError> {
        self.run_observed(program, &mut NullObserver)
    }

    /// Runs `program` to `Halt`, reporting every retirement to `observer`.
    ///
    /// Generic over the observer so each caller gets a monomorphised run
    /// loop: with [`NullObserver`] the `on_retire` calls — and the
    /// [`RetireEvent`] construction feeding them — compile away entirely,
    /// so unobserved runs pay nothing for the observation hook.
    ///
    /// Dispatches per [`CoreConfig::dispatch`]: the block-level
    /// superinstruction engine (default) or the instruction-level oracle.
    /// Both paths are byte-identical on architectural state, memory image,
    /// observer events, and energy accounting — the block-mode differential
    /// suite enforces it.
    ///
    /// # Errors
    ///
    /// * [`RunError::FuseBlown`] if the dynamic instruction limit is hit;
    /// * [`RunError::PcOutOfRange`] if control leaves the main code region;
    /// * [`RunError::UnexpectedInstruction`] on amnesic instructions.
    pub fn run_observed<O: Observer + ?Sized>(
        &self,
        program: &Program,
        observer: &mut O,
    ) -> Result<RunResult, RunError> {
        match self.config.dispatch {
            Dispatch::Inst => self.run_inst(program, observer),
            Dispatch::Block => self.run_block(program, observer),
        }
    }

    /// The instruction-level path: one fetch/decode/retire per dispatch.
    /// Kept verbatim as the differential oracle for the block engine.
    fn run_inst<O: Observer + ?Sized>(
        &self,
        program: &Program,
        observer: &mut O,
    ) -> Result<RunResult, RunError> {
        let mut machine = Machine::new(&self.config, program);
        // Hoist the per-retirement enum re-matching out of the loop: operand
        // registers, category, and payloads are static per pc.
        let decoded = predecode(program);
        let mut pc = program.entry;
        let mut retired: u64 = 0;
        let mut loads: u64 = 0;
        let mut stores: u64 = 0;

        loop {
            if retired >= self.config.max_instructions {
                return Err(RunError::FuseBlown {
                    limit: self.config.max_instructions,
                });
            }
            if pc >= program.code_len {
                return Err(RunError::PcOutOfRange { pc });
            }
            machine.fetch(pc);
            let d = &decoded[pc];
            retired += 1;

            let mut src_values = [0u64; 3];
            for (i, s) in d.srcs.iter().enumerate() {
                if let Some(r) = s {
                    src_values[i] = machine.reg(*r);
                }
            }

            let mut event = RetireEvent {
                pc,
                inst: &program.instructions[pc],
                src_values,
                result: None,
                addr: None,
                level: None,
            };
            let mut next_pc = pc + 1;

            match d.op {
                DecodedOp::Halt => {
                    machine.charge_op(Category::Jump);
                    observer.on_retire(&event);
                    break;
                }
                DecodedOp::Load { offset } => {
                    let addr = src_values[0].wrapping_add(offset as u64);
                    let (value, level) = machine.load_word(addr);
                    machine.set_reg(d.dst.expect("loads have a dst"), value);
                    loads += 1;
                    event.result = Some(value);
                    event.addr = Some(addr);
                    event.level = Some(level);
                }
                DecodedOp::Store { offset } => {
                    let addr = src_values[1].wrapping_add(offset as u64);
                    let level = machine.store_word(addr, src_values[0]);
                    stores += 1;
                    event.addr = Some(addr);
                    event.level = Some(level);
                }
                DecodedOp::Branch { cond, target } => {
                    machine.charge_op(Category::Branch);
                    if cond.eval(src_values[0], src_values[1]) {
                        next_pc = target;
                    }
                }
                DecodedOp::Jump { target } => {
                    machine.charge_op(Category::Jump);
                    next_pc = target;
                }
                DecodedOp::Rcmp { .. } | DecodedOp::Rtn | DecodedOp::Rec { .. } => {
                    return Err(RunError::UnexpectedInstruction {
                        pc,
                        what: program.instructions[pc].to_string(),
                    });
                }
                _ => {
                    let value = d.eval_compute(src_values);
                    machine.set_reg(d.dst.expect("compute instructions have a dst"), value);
                    machine.charge_op(d.category);
                    event.result = Some(value);
                }
            }

            observer.on_retire(&event);
            pc = next_pc;
        }

        Ok(RunResult {
            final_memory: machine.extract_output(program),
            hierarchy: machine.hierarchy.stats().clone(),
            account: machine.account,
            instructions: retired,
            loads,
            stores,
        })
    }

    /// The block-level engine: the outer loop dispatches whole basic blocks
    /// and only returns to the pc checks at block exits (branch, jump, halt,
    /// fallthrough past `code_len`). Fused pairs retire both halves inside
    /// one handler; every half still fetches, charges, and reports to the
    /// observer individually, so the energy tape and event stream are
    /// bit-identical to the instruction-level oracle (DESIGN.md §4e).
    fn run_block<O: Observer + ?Sized>(
        &self,
        program: &Program,
        observer: &mut O,
    ) -> Result<RunResult, RunError> {
        let mut machine = Machine::new(&self.config, program);
        let table = BlockTable::build(program);
        let decoded = table.decoded();
        let max = self.config.max_instructions;
        let mut pc = program.entry;
        let mut retired: u64 = 0;
        let mut loads: u64 = 0;
        let mut stores: u64 = 0;

        'run: loop {
            // Block entry mirrors the oracle's per-instruction checks: the
            // fuse first (so a limit hit and an out-of-range pc report the
            // same error the oracle would), then the range.
            if retired >= max {
                return Err(RunError::FuseBlown { limit: max });
            }
            if pc >= program.code_len {
                return Err(RunError::PcOutOfRange { pc });
            }
            let block = table.main_block(pc);
            let mut next_pc = block.end;
            for bi in table.units(block) {
                if retired >= max {
                    return Err(RunError::FuseBlown { limit: max });
                }
                let ipc = bi.pc as usize;
                match bi.fused {
                    None => {
                        let d = &decoded[ipc];
                        machine.fetch(ipc);
                        retired += 1;
                        match d.op {
                            DecodedOp::Halt => {
                                let src_values = gather(&machine, d);
                                machine.charge_op(Category::Jump);
                                observer.on_retire(&RetireEvent {
                                    pc: ipc,
                                    inst: &program.instructions[ipc],
                                    src_values,
                                    result: None,
                                    addr: None,
                                    level: None,
                                });
                                break 'run;
                            }
                            DecodedOp::Load { offset } => {
                                retire_load(&mut machine, observer, program, d, offset, ipc);
                                loads += 1;
                            }
                            DecodedOp::Store { offset } => {
                                retire_store(&mut machine, observer, program, d, offset, ipc);
                                stores += 1;
                            }
                            DecodedOp::Branch { cond, target } => {
                                retire_branch(
                                    &mut machine,
                                    observer,
                                    program,
                                    d,
                                    cond,
                                    target,
                                    ipc,
                                    &mut next_pc,
                                );
                            }
                            DecodedOp::Jump { target } => {
                                let src_values = gather(&machine, d);
                                machine.charge_op(Category::Jump);
                                observer.on_retire(&RetireEvent {
                                    pc: ipc,
                                    inst: &program.instructions[ipc],
                                    src_values,
                                    result: None,
                                    addr: None,
                                    level: None,
                                });
                                next_pc = target;
                            }
                            DecodedOp::Rcmp { .. } | DecodedOp::Rtn | DecodedOp::Rec { .. } => {
                                return Err(RunError::UnexpectedInstruction {
                                    pc: ipc,
                                    what: program.instructions[ipc].to_string(),
                                });
                            }
                            _ => retire_compute(&mut machine, observer, program, d, ipc),
                        }
                    }
                    Some(Fusion::CmpBranch) => {
                        let (a, b) = (&decoded[ipc], &decoded[ipc + 1]);
                        machine.fetch(ipc);
                        retired += 1;
                        retire_compute(&mut machine, observer, program, a, ipc);
                        if retired >= max {
                            return Err(RunError::FuseBlown { limit: max });
                        }
                        machine.fetch(ipc + 1);
                        retired += 1;
                        let DecodedOp::Branch { cond, target } = b.op else {
                            unreachable!("CmpBranch second half is a branch");
                        };
                        retire_branch(
                            &mut machine,
                            observer,
                            program,
                            b,
                            cond,
                            target,
                            ipc + 1,
                            &mut next_pc,
                        );
                    }
                    Some(Fusion::LoadAlu) => {
                        let (a, b) = (&decoded[ipc], &decoded[ipc + 1]);
                        machine.fetch(ipc);
                        retired += 1;
                        let DecodedOp::Load { offset } = a.op else {
                            unreachable!("LoadAlu first half is a load");
                        };
                        retire_load(&mut machine, observer, program, a, offset, ipc);
                        loads += 1;
                        if retired >= max {
                            return Err(RunError::FuseBlown { limit: max });
                        }
                        machine.fetch(ipc + 1);
                        retired += 1;
                        retire_compute(&mut machine, observer, program, b, ipc + 1);
                    }
                    Some(Fusion::AluiStore) => {
                        let (a, b) = (&decoded[ipc], &decoded[ipc + 1]);
                        machine.fetch(ipc);
                        retired += 1;
                        retire_compute(&mut machine, observer, program, a, ipc);
                        if retired >= max {
                            return Err(RunError::FuseBlown { limit: max });
                        }
                        machine.fetch(ipc + 1);
                        retired += 1;
                        let DecodedOp::Store { offset } = b.op else {
                            unreachable!("AluiStore second half is a store");
                        };
                        retire_store(&mut machine, observer, program, b, offset, ipc + 1);
                        stores += 1;
                    }
                    Some(Fusion::LiAlu) => {
                        let (a, b) = (&decoded[ipc], &decoded[ipc + 1]);
                        machine.fetch(ipc);
                        retired += 1;
                        retire_compute(&mut machine, observer, program, a, ipc);
                        if retired >= max {
                            return Err(RunError::FuseBlown { limit: max });
                        }
                        machine.fetch(ipc + 1);
                        retired += 1;
                        retire_compute(&mut machine, observer, program, b, ipc + 1);
                    }
                }
            }
            pc = next_pc;
        }

        Ok(RunResult {
            final_memory: machine.extract_output(program),
            hierarchy: machine.hierarchy.stats().clone(),
            account: machine.account,
            instructions: retired,
            loads,
            stores,
        })
    }
}

/// Reads a decoded instruction's source operand values from the register
/// file, in [`Instruction::srcs`] position order (unused positions are 0).
#[inline(always)]
fn gather(machine: &Machine, d: &DecodedInst) -> [u64; 3] {
    let mut vals = [0u64; 3];
    for (j, s) in d.srcs.iter().enumerate() {
        if let Some(r) = s {
            vals[j] = machine.reg(*r);
        }
    }
    vals
}

/// Retires one compute instruction: gather → evaluate → write-back →
/// charge → observe, exactly the oracle's order.
#[inline(always)]
fn retire_compute<O: Observer + ?Sized>(
    machine: &mut Machine,
    observer: &mut O,
    program: &Program,
    d: &DecodedInst,
    pc: usize,
) {
    let src_values = gather(machine, d);
    let value = d.eval_compute(src_values);
    machine.set_reg(d.dst.expect("compute instructions have a dst"), value);
    machine.charge_op(d.category);
    observer.on_retire(&RetireEvent {
        pc,
        inst: &program.instructions[pc],
        src_values,
        result: Some(value),
        addr: None,
        level: None,
    });
}

/// Retires one load.
#[inline(always)]
fn retire_load<O: Observer + ?Sized>(
    machine: &mut Machine,
    observer: &mut O,
    program: &Program,
    d: &DecodedInst,
    offset: i64,
    pc: usize,
) {
    let src_values = gather(machine, d);
    let addr = src_values[0].wrapping_add(offset as u64);
    let (value, level) = machine.load_word(addr);
    machine.set_reg(d.dst.expect("loads have a dst"), value);
    observer.on_retire(&RetireEvent {
        pc,
        inst: &program.instructions[pc],
        src_values,
        result: Some(value),
        addr: Some(addr),
        level: Some(level),
    });
}

/// Retires one store.
#[inline(always)]
fn retire_store<O: Observer + ?Sized>(
    machine: &mut Machine,
    observer: &mut O,
    program: &Program,
    d: &DecodedInst,
    offset: i64,
    pc: usize,
) {
    let src_values = gather(machine, d);
    let addr = src_values[1].wrapping_add(offset as u64);
    let level = machine.store_word(addr, src_values[0]);
    observer.on_retire(&RetireEvent {
        pc,
        inst: &program.instructions[pc],
        src_values,
        result: None,
        addr: Some(addr),
        level: Some(level),
    });
}

/// Retires one conditional branch, steering `next_pc` on a taken edge.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn retire_branch<O: Observer + ?Sized>(
    machine: &mut Machine,
    observer: &mut O,
    program: &Program,
    d: &DecodedInst,
    cond: BranchCond,
    target: usize,
    pc: usize,
    next_pc: &mut usize,
) {
    let src_values = gather(machine, d);
    machine.charge_op(Category::Branch);
    if cond.eval(src_values[0], src_values[1]) {
        *next_pc = target;
    }
    observer.on_retire(&RetireEvent {
        pc,
        inst: &program.instructions[pc],
        src_values,
        result: None,
        addr: None,
        level: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{AluOp, BranchCond, ProgramBuilder, Reg};

    fn paper_core() -> ClassicCore {
        ClassicCore::new(CoreConfig::paper())
    }

    #[test]
    fn loop_sums_and_stores() {
        // out = Σ_{i<10} i = 45
        let mut b = ProgramBuilder::new("sum");
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.li(Reg(1), 0);
        b.li(Reg(2), 0);
        b.li(Reg(3), 10);
        let top = b.label();
        let done = b.label();
        b.bind(top).unwrap();
        b.branch(BranchCond::Geu, Reg(2), Reg(3), done);
        b.alu(AluOp::Add, Reg(1), Reg(1), Reg(2));
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(top);
        b.bind(done).unwrap();
        b.li(Reg(4), out);
        b.store(Reg(1), Reg(4), 0);
        b.halt();
        let p = b.finish().unwrap();

        let r = paper_core().run(&p).unwrap();
        assert_eq!(r.final_memory[&out], 45);
        assert_eq!(r.stores, 1);
        assert_eq!(r.loads, 0);
        assert!(r.instructions > 30);
        assert!(r.account.cycles() > 0);
    }

    #[test]
    fn load_value_flows_to_register() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_data(&[111, 222]);
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.li(Reg(1), a);
        b.load(Reg(2), Reg(1), 1);
        b.li(Reg(3), out);
        b.store(Reg(2), Reg(3), 0);
        b.halt();
        let p = b.finish().unwrap();
        let r = paper_core().run(&p).unwrap();
        assert_eq!(r.final_memory[&out], 222);
        assert_eq!(r.hierarchy.loads.total(), 1);
    }

    #[test]
    fn infinite_loop_blows_fuse() {
        let mut b = ProgramBuilder::new("t");
        let top = b.label();
        b.bind(top).unwrap();
        b.jump(top);
        b.halt();
        let p = b.finish().unwrap();
        let mut config = CoreConfig::paper();
        config.max_instructions = 100;
        let err = ClassicCore::new(config).run(&p).unwrap_err();
        assert_eq!(err, RunError::FuseBlown { limit: 100 });
    }

    #[test]
    fn classic_core_rejects_amnesic_instructions() {
        use amnesiac_isa::Instruction;
        let mut p = Program::new("t");
        p.instructions = vec![
            Instruction::Rec {
                key: 0,
                srcs: [None, None, None],
            },
            Instruction::Halt,
        ];
        p.code_len = 2;
        // bypass the builder (REC without a slice table fails validation)
        let err = paper_core().run(&p).unwrap_err();
        assert!(matches!(err, RunError::UnexpectedInstruction { pc: 0, .. }));
    }

    #[test]
    fn observer_sees_every_retirement_with_values() {
        struct Collect(Vec<(usize, Option<u64>, Option<u64>)>);
        impl Observer for Collect {
            fn on_retire(&mut self, e: &RetireEvent<'_>) {
                self.0.push((e.pc, e.result, e.addr));
            }
        }
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_data(&[7]);
        b.li(Reg(1), a);
        b.load(Reg(2), Reg(1), 0);
        b.alui(AluOp::Add, Reg(3), Reg(2), 1);
        b.halt();
        let p = b.finish().unwrap();
        let mut obs = Collect(Vec::new());
        paper_core().run_observed(&p, &mut obs).unwrap();
        assert_eq!(obs.0.len(), 4);
        assert_eq!(obs.0[0], (0, Some(a), None));
        assert_eq!(obs.0[1], (1, Some(7), Some(a)));
        assert_eq!(obs.0[2], (2, Some(8), None));
        assert_eq!(obs.0[3].0, 3);
    }

    #[test]
    fn fp_pipeline_computes_dot_product() {
        let mut b = ProgramBuilder::new("dot");
        let x = b.alloc_f64(&[1.0, 2.0, 3.0]);
        let y = b.alloc_f64(&[4.0, 5.0, 6.0]);
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.li(Reg(1), x);
        b.li(Reg(2), y);
        b.lfi(Reg(3), 0.0); // acc
        for i in 0..3 {
            b.load(Reg(4), Reg(1), i);
            b.load(Reg(5), Reg(2), i);
            b.fma(Reg(3), Reg(4), Reg(5), Reg(3));
        }
        b.li(Reg(6), out);
        b.store(Reg(3), Reg(6), 0);
        b.halt();
        let p = b.finish().unwrap();
        let r = paper_core().run(&p).unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&out]), 32.0);
    }
}
