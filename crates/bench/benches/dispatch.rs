//! Dispatch microbenchmark: retiring a real benchmark's static instruction
//! stream through the legacy enum-match path (rebuild `srcs`, re-derive the
//! category, nested `eval_compute` match), versus the predecoded table from
//! PR 3, versus the block/superinstruction tape the interpreters now use
//! (charge constants pre-summed per block, dispatch only at eval points).
//! Set `AMNESIAC_BENCH_JSON=<path>` to also dump the measurements — plus
//! the block lowering's fusion statistics — as JSON.

use amnesiac_bench::Bencher;
use amnesiac_cfg::{BlockTable, Fusion};
use amnesiac_isa::{predecode, Category, DecodedInst, DecodedOp, Instruction};
use amnesiac_sim::eval_compute;
use amnesiac_telemetry::Json;
use amnesiac_workloads::{build_focal, Scale};

/// Full sweeps over the static stream per sample — enough retirements to
/// swamp the loop overhead.
const SWEEPS: usize = 500;

/// A stand-in for `Machine::charge_op`: fold the category into the
/// accumulator so the per-retirement category derivation is not dead code.
#[inline]
fn charge(category: Category) -> u64 {
    category as u64 + 1
}

fn enum_sweep(insts: &[Instruction]) -> u64 {
    let mut acc = 0u64;
    for inst in insts {
        let srcs = inst.srcs();
        let mut vals = [0u64; 3];
        for (j, s) in srcs.iter().enumerate() {
            if let Some(r) = s {
                vals[j] = acc ^ r.index() as u64;
            }
        }
        match inst {
            Instruction::Load { .. }
            | Instruction::Store { .. }
            | Instruction::Branch { .. }
            | Instruction::Jump { .. }
            | Instruction::Halt
            | Instruction::Rcmp { .. }
            | Instruction::Rtn { .. }
            | Instruction::Rec { .. } => {
                acc = acc.wrapping_add(charge(inst.category()));
            }
            compute => {
                acc = acc.wrapping_add(eval_compute(compute, vals));
                acc = acc.wrapping_add(charge(compute.category()));
            }
        }
    }
    acc
}

fn decoded_sweep(decoded: &[DecodedInst]) -> u64 {
    let mut acc = 0u64;
    for d in decoded {
        let mut vals = [0u64; 3];
        for (j, s) in d.srcs.iter().enumerate() {
            if let Some(r) = s {
                vals[j] = acc ^ r.index() as u64;
            }
        }
        match d.op {
            DecodedOp::Load { .. }
            | DecodedOp::Store { .. }
            | DecodedOp::Branch { .. }
            | DecodedOp::Jump { .. }
            | DecodedOp::Halt
            | DecodedOp::Rcmp { .. }
            | DecodedOp::Rtn
            | DecodedOp::Rec { .. } => {
                acc = acc.wrapping_add(charge(d.category));
            }
            _ => {
                acc = acc.wrapping_add(d.eval_compute(vals));
                acc = acc.wrapping_add(charge(d.category));
            }
        }
    }
    acc
}

/// An eval point in a block's tape: the folded charge constant of the
/// non-eval run preceding it (one `wrapping_add`, however long the run),
/// then the compute instruction whose result feeds the accumulator. The
/// operand gather is pre-resolved: `vals[j] = acc ^ xors[j]` unconditionally
/// (`eval_compute` only reads the positions the op actually has operands
/// in, so absent slots may hold anything) — the sweep never walks the
/// `Option` operand array.
struct TapeStep {
    pre: u64,
    xors: [u64; 3],
    inst: DecodedInst,
}

/// A block's positional tape: eval points plus the trailing folded charge.
struct TapeBlock {
    steps: Vec<TapeStep>,
    tail: u64,
}

/// Accumulator feedback points: everything the sweeps' `_` arm evaluates.
/// All other ops contribute only their (associative) charge constant, so
/// the lowering folds them away.
fn is_eval(d: &DecodedInst) -> bool {
    !matches!(
        d.op,
        DecodedOp::Load { .. }
            | DecodedOp::Store { .. }
            | DecodedOp::Branch { .. }
            | DecodedOp::Jump { .. }
            | DecodedOp::Halt
            | DecodedOp::Rcmp { .. }
            | DecodedOp::Rtn
            | DecodedOp::Rec { .. }
    )
}

/// Lowers a straight-line run into a tape block. A compute instruction's
/// own charge is deferred into the next step's constant (or the tail) —
/// exact, because `wrapping_add` is associative, so the accumulator value
/// at every eval point is bit-identical to the linear sweeps'. Zero-operand
/// computes (`li`: constant materialisation) never read the accumulator, so
/// their value *and* charge fold into the constants at build time — the
/// tape only dispatches where there is genuine accumulator feedback.
fn flatten(insts: &[DecodedInst]) -> TapeBlock {
    let mut steps = Vec::new();
    let mut pre = 0u64;
    for d in insts {
        if !is_eval(d) {
            pre = pre.wrapping_add(charge(d.category));
        } else if d.srcs.iter().all(Option::is_none) {
            // constant-producing: eval at lowering time, fold like a charge
            pre = pre
                .wrapping_add(d.eval_compute([0; 3]))
                .wrapping_add(charge(d.category));
        } else {
            let mut xors = [0u64; 3];
            for (j, s) in d.srcs.iter().enumerate() {
                if let Some(r) = s {
                    xors[j] = r.index() as u64;
                }
            }
            steps.push(TapeStep {
                pre,
                xors,
                inst: *d,
            });
            pre = charge(d.category);
        }
    }
    TapeBlock { steps, tail: pre }
}

/// The full program as tape blocks, in linear pc order (so the sweep
/// retires the exact stream the other two arms do). Pcs outside every
/// block — the `RTN` trailing each slice body — ride singleton tapes.
fn build_tape(table: &BlockTable) -> Vec<TapeBlock> {
    let decoded = table.decoded();
    let mut tape = Vec::new();
    let mut pc = 0;
    while pc < decoded.len() {
        match table.block_of_pc(pc) {
            Some(b) if b.start == pc => {
                tape.push(flatten(&decoded[b.start..b.end]));
                pc = b.end;
            }
            _ => {
                tape.push(flatten(&decoded[pc..pc + 1]));
                pc += 1;
            }
        }
    }
    tape
}

fn block_sweep(tape: &[TapeBlock]) -> u64 {
    let mut acc = 0u64;
    for block in tape {
        for step in &block.steps {
            acc = acc.wrapping_add(step.pre);
            let vals = [acc ^ step.xors[0], acc ^ step.xors[1], acc ^ step.xors[2]];
            acc = acc.wrapping_add(step.inst.eval_compute(vals));
        }
        acc = acc.wrapping_add(block.tail);
    }
    acc
}

fn main() {
    let mut b = Bencher::new(20);
    let program = build_focal("cg", Scale::Test).program;
    let insts = program.instructions.clone();
    let decoded = predecode(&program);
    let table = BlockTable::build(&program);
    let tape = build_tape(&table);

    // the three paths must retire identical streams to identical effect
    assert_eq!(enum_sweep(&insts), decoded_sweep(&decoded));
    assert_eq!(enum_sweep(&insts), block_sweep(&tape));

    b.bench("dispatch/enum_match", || {
        let mut acc = 0u64;
        for _ in 0..SWEEPS {
            acc = acc.wrapping_add(enum_sweep(&insts));
        }
        acc
    });
    b.bench("dispatch/predecoded", || {
        let mut acc = 0u64;
        for _ in 0..SWEEPS {
            acc = acc.wrapping_add(decoded_sweep(&decoded));
        }
        acc
    });
    b.bench("dispatch/block_fused", || {
        let mut acc = 0u64;
        for _ in 0..SWEEPS {
            acc = acc.wrapping_add(block_sweep(&tape));
        }
        acc
    });

    let stats = table.stats();
    println!(
        "fusion: {} blocks (+{} slice bodies), {} insts, {} pairs fused \
         (cmp_branch {}, load_alu {}, alui_store {}, li_alu {}), \
         avg block len {:.2}",
        stats.blocks,
        stats.slice_blocks,
        stats.insts,
        stats.fused_pairs(),
        stats.fused_of(Fusion::CmpBranch),
        stats.fused_of(Fusion::LoadAlu),
        stats.fused_of(Fusion::AluiStore),
        stats.fused_of(Fusion::LiAlu),
        stats.avg_block_len(),
    );

    if let Ok(path) = std::env::var("AMNESIAC_BENCH_JSON") {
        let mut by_kind = Json::obj();
        for kind in Fusion::ALL {
            by_kind = by_kind.with(kind.label(), stats.fused_of(kind));
        }
        let dump = Json::obj().with("measurements", b.to_json()).with(
            "fusion",
            Json::obj()
                .with("blocks", stats.blocks)
                .with("slice_blocks", stats.slice_blocks)
                .with("insts", stats.insts)
                .with("fused_pairs", stats.fused_pairs())
                .with("fused_by_kind", by_kind)
                .with("dispatch_units", stats.dispatch_units())
                .with("avg_block_len", stats.avg_block_len()),
        );
        std::fs::write(&path, dump.pretty()).expect("write bench JSON");
        println!("wrote {path}");
    }
}
