//! The typed result of every CLI verb.
//!
//! [`crate::run`] returns a [`Response`] — one structured variant per
//! verb — and the two consumers diverge from there: the `amnesiac`
//! binary renders it with [`Response::render_text`] (byte-identical to
//! the historical output) and exports [`Response::payload_json`] under
//! `--json <dir>`, while `amnesiac serve` ships the same payload over
//! the wire. One computation, two faithful projections.

use std::fmt::Write as _;
use std::path::PathBuf;

use amnesiac_compiler::{CompileReport, SiteOutcome};
use amnesiac_core::AmnesicRunResult;
use amnesiac_experiments::regress::{self, Regression, ServeComparison};
use amnesiac_experiments::{LintSweep, VerifySweep};
use amnesiac_profile::ProgramProfile;
use amnesiac_sim::RunResult;
use amnesiac_telemetry::{Json, ToJson};
use amnesiac_verify::VerifyReport;

/// The structured outcome of one verb.
///
/// Failure-shaped outcomes (a dirty `verify`, a regressed
/// `bench-compare`, a `serve-smoke` with mismatches) are still `Ok`
/// responses from [`crate::run`] — [`Response::is_failure`] tells the
/// caller whether to exit non-zero, so the service layer can transport
/// the full structured payload instead of a flattened error string.
#[derive(Debug)]
pub enum Response {
    /// `run`: classic execution of one program.
    Run {
        /// Program name (from the `.name` directive or the benchmark).
        program: String,
        /// The simulator's result.
        result: RunResult,
    },
    /// `disasm`: the textual listing.
    Disasm {
        /// Program name.
        program: String,
        /// The disassembly listing.
        listing: String,
    },
    /// `trace`: a rendered retirement trace.
    Trace {
        /// Program name.
        program: String,
        /// The rendered trace.
        rendered: String,
    },
    /// `profile`: per-load-site statistics.
    Profile {
        /// Program name.
        program: String,
        /// The load-site profile.
        profile: ProgramProfile,
    },
    /// `compile`: selection report plus annotated listing.
    Compile {
        /// Program name.
        program: String,
        /// The compiler's decision report.
        report: CompileReport,
        /// Disassembly of the annotated binary.
        listing: String,
        /// Compile-cache counters, attached only on the one-shot
        /// `--cache-dir` path. Deliberately `None` for served requests:
        /// counters are volatile, and a cache-hit response must stay
        /// byte-identical on the wire to its cold-compile twin (the serve
        /// `stats` verb reports the shared cache instead).
        cache: Option<Json>,
    },
    /// `compare`: classic vs every amnesic policy.
    Compare {
        /// Program name.
        program: String,
        /// The classic (baseline) run.
        classic: RunResult,
        /// One `(policy label, result)` row per policy, in table order.
        policies: Vec<(String, AmnesicRunResult)>,
    },
    /// `encode`: a binary image was written.
    Encode {
        /// Output path.
        path: String,
        /// Image size in bytes.
        bytes: usize,
        /// Instruction count.
        instructions: usize,
    },
    /// `verify <target>`: static analysis of one program.
    VerifyTarget {
        /// The target as given on the command line.
        target: String,
        /// The analyser's report.
        report: VerifyReport,
    },
    /// `verify` with no target: the whole-suite sweep.
    VerifySweep {
        /// The sweep over all built-in workloads.
        sweep: VerifySweep,
    },
    /// `lint <target>`: abstract-interpretation findings for one program
    /// (the full compile report — verifier diagnostics plus the
    /// replay-validation counters showing what the static prover skipped).
    LintTarget {
        /// The target as given on the command line.
        target: String,
        /// The compiler's report for the default slice set.
        report: CompileReport,
    },
    /// `lint` with no target: the whole-suite sweep.
    LintSweep {
        /// The sweep over all built-in workloads.
        sweep: LintSweep,
    },
    /// `experiments`: the evaluation suite's artifact set.
    Experiments {
        /// Destination directory (`None` when invoked over the wire —
        /// artifacts travel in the payload instead of touching disk).
        dir: Option<PathBuf>,
        /// Number of benchmarks evaluated.
        n_benches: usize,
        /// `(file name, document)` pairs in canonical write order.
        artifacts: Vec<(String, Json)>,
    },
    /// `bench-snapshot`: a perf baseline was written.
    BenchSnapshot {
        /// Output path.
        path: String,
        /// Number of benchmarks in the baseline.
        n_benches: usize,
        /// The snapshot document.
        snapshot: Json,
    },
    /// `bench-compare`: fresh gains diffed against a baseline.
    BenchCompare {
        /// Tolerance in percentage points.
        tolerance_pp: f64,
        /// Zero-baseline blind-spot warnings.
        warnings: Vec<String>,
        /// Every gain that fell beyond the tolerance.
        regressions: Vec<Regression>,
    },
    /// `serve`: the service drained and stopped.
    Serve {
        /// The address the server was bound to.
        addr: String,
        /// Final statistics snapshot.
        stats: Json,
    },
    /// `serve-smoke`: the in-process service self-test.
    ServeSmoke {
        /// Number of checks performed.
        checks: usize,
        /// Human-readable description of every failed check.
        failures: Vec<String>,
        /// Server statistics at the end of the smoke batch.
        stats: Json,
    },
    /// `loadgen`: one open-loop load run against an in-process server.
    Loadgen {
        /// The full snapshot document (`{schema_version, kind,
        /// config, results}`) — the exact bytes `--json` writes, so a
        /// run can be committed verbatim as `BENCH_serve.json`.
        snapshot: Json,
    },
    /// `loadgen-smoke`: the in-process load-generator soak test.
    LoadgenSmoke {
        /// Number of checks performed.
        checks: usize,
        /// Human-readable description of every failed check.
        failures: Vec<String>,
        /// Snapshot of the soak run.
        snapshot: Json,
    },
    /// `cluster`: the router drained and stopped, workers reaped.
    Cluster {
        /// The address the router was bound to.
        addr: String,
        /// Number of worker processes spawned.
        workers: usize,
        /// Final router statistics (aggregated worker counters,
        /// membership view, reroute counts).
        stats: Json,
    },
    /// `cluster-smoke`: the end-to-end cluster self-test (spawned
    /// workers, kill-one-mid-flight, exactly-once response accounting).
    ClusterSmoke {
        /// Number of checks performed.
        checks: usize,
        /// Human-readable description of every failed check.
        failures: Vec<String>,
        /// Router statistics at the end of the smoke run.
        stats: Json,
    },
    /// `bench-compare` against a `kind: "serve"` baseline: a fresh
    /// loadgen replay diffed against the committed service baseline.
    BenchCompareServe {
        /// Tolerance in percentage points (applied to the error rate).
        tolerance_pp: f64,
        /// Gated regressions plus informational latency notes.
        comparison: ServeComparison,
        /// The freshly measured snapshot.
        current: Json,
    },
}

impl Response {
    /// The verb name this response answers — also the stem of the
    /// `--json` artifact (`<verb>.json`).
    pub fn verb_name(&self) -> &'static str {
        match self {
            Response::Run { .. } => "run",
            Response::Disasm { .. } => "disasm",
            Response::Trace { .. } => "trace",
            Response::Profile { .. } => "profile",
            Response::Compile { .. } => "compile",
            Response::Compare { .. } => "compare",
            Response::Encode { .. } => "encode",
            Response::VerifyTarget { .. } | Response::VerifySweep { .. } => "verify",
            Response::LintTarget { .. } | Response::LintSweep { .. } => "lint",
            Response::Experiments { .. } => "experiments",
            Response::BenchSnapshot { .. } => "bench-snapshot",
            Response::BenchCompare { .. } => "bench-compare",
            Response::Serve { .. } => "serve",
            Response::ServeSmoke { .. } => "serve-smoke",
            Response::Loadgen { .. } => "loadgen",
            Response::LoadgenSmoke { .. } => "loadgen-smoke",
            Response::Cluster { .. } => "cluster",
            Response::ClusterSmoke { .. } => "cluster-smoke",
            Response::BenchCompareServe { .. } => "bench-compare",
        }
    }

    /// Whether this outcome should make the process exit non-zero
    /// (e.g. a dirty `verify` or a regressed `bench-compare`).
    pub fn is_failure(&self) -> bool {
        match self {
            Response::VerifyTarget { report, .. } => !report.is_clean(),
            Response::VerifySweep { sweep } => !sweep.is_clean(),
            Response::LintTarget { report, .. } => {
                !report.verify.is_clean() || report.verify.unexplained_warn_count() > 0
            }
            Response::LintSweep { sweep } => !sweep.is_clean(),
            Response::BenchCompare { regressions, .. } => !regressions.is_empty(),
            Response::ServeSmoke { failures, .. } => !failures.is_empty(),
            Response::LoadgenSmoke { failures, .. } => !failures.is_empty(),
            Response::ClusterSmoke { failures, .. } => !failures.is_empty(),
            Response::BenchCompareServe { comparison, .. } => !comparison.ok(),
            _ => false,
        }
    }

    /// Renders the historical terminal report for this verb.
    pub fn render_text(&self) -> String {
        match self {
            Response::Run { program, result } => {
                let mut out = String::new();
                let _ = writeln!(out, "program `{program}` halted");
                let _ = writeln!(
                    out,
                    "  {} instructions, {} loads, {} stores",
                    result.instructions, result.loads, result.stores
                );
                let _ = writeln!(
                    out,
                    "  energy {:.1} nJ, time {} cycles, EDP {:.3e}",
                    result.account.total_nj(),
                    result.account.cycles(),
                    result.edp()
                );
                for (addr, value) in &result.final_memory {
                    let _ = writeln!(out, "  out[{addr:#x}] = {value:#x}");
                }
                out
            }
            Response::Disasm { listing, .. } => listing.clone(),
            Response::Trace { rendered, .. } => rendered.clone(),
            Response::Profile { profile, .. } => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{} load sites over {} dynamic instructions:",
                    profile.loads.len(),
                    profile.instructions
                );
                for site in profile.loads.values() {
                    let pr = site.probabilities();
                    let _ = write!(
                        out,
                        "  pc {:>5}: {:>9} instances, L1/L2/Mem {:>5.1}/{:>4.1}/{:>5.1}%, \
                         locality {:>5.1}%",
                        site.pc,
                        site.count,
                        100.0 * pr[0],
                        100.0 * pr[1],
                        100.0 * pr[2],
                        100.0 * site.value_locality()
                    );
                    match (&site.tree, site.unswappable) {
                        (Some(t), _) => {
                            let _ = writeln!(out, ", producer tree {} nodes", t.size());
                        }
                        (None, Some(why)) => {
                            let _ = writeln!(out, ", unswappable ({why:?})");
                        }
                        (None, None) => {
                            let _ = writeln!(out);
                        }
                    }
                }
                out
            }
            Response::Compile {
                report, listing, ..
            } => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{} of {} sites swapped; {} RECs; storage bounds: SFile {} / Hist {} / IBuff {}",
                    report.n_selected(),
                    report.decisions.len(),
                    report.rec_count,
                    report.storage.sfile_entries,
                    report.storage.hist_entries,
                    report.storage.ibuff_entries
                );
                for d in &report.decisions {
                    match &d.outcome {
                        SiteOutcome::Selected {
                            slice_len,
                            height,
                            est_recompute_nj,
                            est_load_nj,
                            ..
                        } => {
                            let _ = writeln!(
                                out,
                                "  pc {:>5}: SELECTED ({slice_len} insts, h={height}, \
                                 E_rc {est_recompute_nj:.2} < E_ld {est_load_nj:.2} nJ)",
                                d.load_pc
                            );
                        }
                        other => {
                            let _ = writeln!(out, "  pc {:>5}: {other:?}", d.load_pc);
                        }
                    }
                }
                let _ = writeln!(out, "\n{listing}");
                out
            }
            Response::Compare {
                classic, policies, ..
            } => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{:<10} {:>14} {:>12} {:>12} {:>9}",
                    "policy", "energy (nJ)", "cycles", "EDP", "gain"
                );
                let _ = writeln!(
                    out,
                    "{:<10} {:>14.1} {:>12} {:>12.3e} {:>9}",
                    "classic",
                    classic.account.total_nj(),
                    classic.account.cycles(),
                    classic.edp(),
                    "-"
                );
                for (label, result) in policies {
                    let _ = writeln!(
                        out,
                        "{:<10} {:>14.1} {:>12} {:>12.3e} {:>8.2}%",
                        label,
                        result.run.account.total_nj(),
                        result.run.account.cycles(),
                        result.edp(),
                        100.0 * (1.0 - result.edp() / classic.edp())
                    );
                }
                out
            }
            Response::Encode {
                path,
                bytes,
                instructions,
            } => {
                format!("wrote {bytes} bytes ({instructions} instructions) to {path}\n")
            }
            Response::VerifyTarget { target, report } => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{target}: {} slices, {} blocks: {} error(s), {} warning(s)",
                    report.slices_checked,
                    report.blocks,
                    report.error_count(),
                    report.warn_count()
                );
                for d in &report.diagnostics {
                    let _ = writeln!(out, "  {d}");
                }
                out
            }
            Response::VerifySweep { sweep } => sweep.render(),
            Response::LintTarget { target, report } => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{target}: {} slices: {} error(s), {} warning(s) ({} unexplained)",
                    report.verify.slices_checked,
                    report.verify.error_count(),
                    report.verify.warn_count(),
                    report.verify.unexplained_warn_count()
                );
                let _ = writeln!(
                    out,
                    "  replay validation: {} round(s) run, {} saved by drop \
                     disjointness, {} saved by static equivalence",
                    report.validation_rounds,
                    report.validation_rounds_saved,
                    report.validation_rounds_saved_static
                );
                for d in &report.verify.diagnostics {
                    let _ = writeln!(out, "  {d}");
                }
                out
            }
            Response::LintSweep { sweep } => sweep.render(),
            Response::Experiments {
                dir,
                n_benches,
                artifacts,
            } => {
                let mut out = String::new();
                match dir {
                    Some(dir) => {
                        let _ = writeln!(
                            out,
                            "computed {n_benches} benchmarks; wrote {} artifacts to {}:",
                            artifacts.len(),
                            dir.display()
                        );
                        for (name, _) in artifacts {
                            let _ = writeln!(out, "  {}", dir.join(name).display());
                        }
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "computed {n_benches} benchmarks; {} artifacts in payload:",
                            artifacts.len()
                        );
                        for (name, _) in artifacts {
                            let _ = writeln!(out, "  {name}");
                        }
                    }
                }
                out
            }
            Response::BenchSnapshot {
                path, n_benches, ..
            } => {
                format!("wrote bench baseline for {n_benches} benchmarks to {path}\n")
            }
            Response::BenchCompare {
                tolerance_pp,
                warnings,
                regressions,
            } => {
                let mut out = String::new();
                for w in warnings {
                    let _ = writeln!(out, "warning: {w}");
                }
                out.push_str(&regress::render_report(regressions, *tolerance_pp));
                out
            }
            Response::Serve { addr, stats } => {
                let served = stats
                    .get_path("verbs")
                    .and_then(Json::as_obj)
                    .map(|verbs| {
                        verbs
                            .iter()
                            .filter_map(|(_, v)| v.get("requests").and_then(Json::as_f64))
                            .sum::<f64>() as u64
                    })
                    .unwrap_or(0);
                format!("amnesiac-serve on {addr} drained and stopped after {served} request(s)\n")
            }
            Response::ServeSmoke {
                checks, failures, ..
            } => {
                let mut out = format!(
                    "serve-smoke: {checks} checks, {} failure(s)\n",
                    failures.len()
                );
                for f in failures {
                    let _ = writeln!(out, "  FAIL: {f}");
                }
                out
            }
            Response::Loadgen { snapshot } => {
                let num = |path: &str| {
                    snapshot
                        .get_path(path)
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0)
                };
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "loadgen: {} requests scheduled at {} req/s over {} ms (seed {})",
                    num("results.scheduled"),
                    num("config.rate"),
                    num("config.duration_ms"),
                    num("config.seed"),
                );
                let _ = writeln!(
                    out,
                    "  ok {} / completed {} / protocol errors {} — error rate {:.3}%",
                    num("results.ok"),
                    num("results.completed"),
                    num("results.protocol_errors"),
                    num("results.error_rate_pct"),
                );
                let _ = writeln!(
                    out,
                    "  throughput {:.1} req/s over {:.1} ms",
                    num("results.throughput_rps"),
                    num("results.elapsed_ms"),
                );
                let _ = writeln!(
                    out,
                    "  latency ms: p50 {:.3}, p90 {:.3}, p99 {:.3}, p999 {:.3}, max {:.3}",
                    num("results.latency_ms.p50"),
                    num("results.latency_ms.p90"),
                    num("results.latency_ms.p99"),
                    num("results.latency_ms.p999"),
                    num("results.latency_ms.max"),
                );
                if let Some(errors) = snapshot
                    .get_path("results.errors_by_code")
                    .and_then(Json::as_obj)
                {
                    for (code, n) in errors {
                        let _ = writeln!(out, "  error `{code}`: {}", n.as_f64().unwrap_or(0.0));
                    }
                }
                if let Some(verbs) = snapshot.get_path("results.verbs").and_then(Json::as_obj) {
                    for (verb, n) in verbs {
                        let _ = writeln!(out, "  verb `{verb}`: {}", n.as_f64().unwrap_or(0.0));
                    }
                }
                out
            }
            Response::LoadgenSmoke {
                checks, failures, ..
            } => {
                let mut out = format!(
                    "loadgen-smoke: {checks} checks, {} failure(s)\n",
                    failures.len()
                );
                for f in failures {
                    let _ = writeln!(out, "  FAIL: {f}");
                }
                out
            }
            Response::Cluster {
                addr,
                workers,
                stats,
            } => {
                let forwarded = stats.get("forwarded").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                let rerouted = stats.get("rerouted").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                format!(
                    "amnesiac-cluster on {addr} drained and stopped: {workers} worker(s), \
                     {forwarded} forwarded, {rerouted} rerouted\n"
                )
            }
            Response::ClusterSmoke {
                checks, failures, ..
            } => {
                let mut out = format!(
                    "cluster-smoke: {checks} checks, {} failure(s)\n",
                    failures.len()
                );
                for f in failures {
                    let _ = writeln!(out, "  FAIL: {f}");
                }
                out
            }
            Response::BenchCompareServe {
                tolerance_pp,
                comparison,
                ..
            } => regress::render_serve_report(comparison, *tolerance_pp),
        }
    }

    /// The machine-readable payload for this verb — the exact document
    /// `--json <dir>` writes to `<verb>.json`, and the exact `payload`
    /// object `amnesiac serve` puts on the wire.
    pub fn payload_json(&self) -> Json {
        match self {
            Response::Run { program, result } => Json::obj()
                .with("program", program.as_str())
                .with("result", result.to_json()),
            Response::Disasm { program, listing } => Json::obj()
                .with("program", program.as_str())
                .with("listing", listing.as_str()),
            Response::Trace { program, rendered } => Json::obj()
                .with("program", program.as_str())
                .with("trace", rendered.as_str()),
            Response::Profile { program, profile } => Json::obj()
                .with("program", program.as_str())
                .with("instructions", profile.instructions)
                .with(
                    "sites",
                    profile
                        .loads
                        .values()
                        .map(|site| {
                            let pr = site.probabilities();
                            let mut obj = Json::obj()
                                .with("pc", site.pc as u64)
                                .with("count", site.count)
                                .with("p_l1", pr[0])
                                .with("p_l2", pr[1])
                                .with("p_mem", pr[2])
                                .with("value_locality", site.value_locality());
                            obj = match (&site.tree, site.unswappable) {
                                (Some(t), _) => obj.with("tree_nodes", t.size() as u64),
                                (None, Some(why)) => obj.with("unswappable", format!("{why:?}")),
                                (None, None) => obj,
                            };
                            obj
                        })
                        .collect::<Vec<_>>(),
                ),
            Response::Compile {
                program,
                report,
                listing,
                cache,
            } => {
                let mut report_json = report.to_json();
                if let Some(cache) = cache {
                    report_json.set("cache", cache.clone());
                }
                Json::obj()
                    .with("program", program.as_str())
                    .with("report", report_json)
                    .with("listing", listing.as_str())
            }
            Response::Compare {
                program,
                classic,
                policies,
            } => Json::obj()
                .with("program", program.as_str())
                .with("classic", classic.to_json())
                .with(
                    "policies",
                    policies
                        .iter()
                        .map(|(label, result)| {
                            Json::obj()
                                .with("policy", label.as_str())
                                .with("result", result.to_json())
                                .with("edp_gain_pct", 100.0 * (1.0 - result.edp() / classic.edp()))
                        })
                        .collect::<Vec<_>>(),
                ),
            Response::Encode {
                path,
                bytes,
                instructions,
            } => Json::obj()
                .with("path", path.as_str())
                .with("bytes", *bytes as u64)
                .with("instructions", *instructions as u64),
            Response::VerifyTarget { report, .. } => report.to_json(),
            Response::VerifySweep { sweep } => sweep.to_json(),
            Response::LintTarget { target, report } => Json::obj()
                .with("target", target.as_str())
                .with("report", report.to_json()),
            Response::LintSweep { sweep } => sweep.to_json(),
            Response::Experiments {
                n_benches,
                artifacts,
                ..
            } => {
                let mut docs = Json::obj();
                for (name, json) in artifacts {
                    docs = docs.with(name.as_str(), json.clone());
                }
                Json::obj()
                    .with("n_benches", *n_benches as u64)
                    .with("artifacts", docs)
            }
            Response::BenchSnapshot {
                path,
                n_benches,
                snapshot,
            } => Json::obj()
                .with("path", path.as_str())
                .with("n_benches", *n_benches as u64)
                .with("snapshot", snapshot.clone()),
            Response::BenchCompare {
                tolerance_pp,
                warnings,
                regressions,
            } => regress::comparison_json(regressions, warnings, *tolerance_pp),
            Response::Serve { addr, stats } => Json::obj()
                .with("addr", addr.as_str())
                .with("stats", stats.clone()),
            Response::ServeSmoke {
                checks,
                failures,
                stats,
            } => Json::obj()
                .with("checks", *checks as u64)
                .with("failures", failures.to_vec())
                .with("stats", stats.clone()),
            // The loadgen payload IS the snapshot — `--json` writes it
            // verbatim, so a pinned run commits as `BENCH_serve.json`
            // without post-processing.
            Response::Loadgen { snapshot } => snapshot.clone(),
            Response::LoadgenSmoke {
                checks,
                failures,
                snapshot,
            } => Json::obj()
                .with("checks", *checks as u64)
                .with("failures", failures.to_vec())
                .with("snapshot", snapshot.clone()),
            Response::Cluster {
                addr,
                workers,
                stats,
            } => Json::obj()
                .with("addr", addr.as_str())
                .with("workers", *workers as u64)
                .with("stats", stats.clone()),
            Response::ClusterSmoke {
                checks,
                failures,
                stats,
            } => Json::obj()
                .with("checks", *checks as u64)
                .with("failures", failures.to_vec())
                .with("stats", stats.clone()),
            Response::BenchCompareServe {
                tolerance_pp,
                comparison,
                current,
            } => regress::serve_comparison_json(comparison, *tolerance_pp)
                .with("current", current.clone()),
        }
    }
}
