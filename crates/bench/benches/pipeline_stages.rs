//! Criterion benchmarks of the amnesic toolchain's stages — profiling,
//! compilation, classic simulation, and amnesic simulation per policy —
//! on representative kernels.

use amnesiac_compiler::{compile, CompileOptions};
use amnesiac_core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac_profile::profile_program;
use amnesiac_sim::{ClassicCore, CoreConfig};
use amnesiac_workloads::{build_focal, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const KERNELS: [&str; 3] = ["is", "sr", "bfs"];

fn bench_classic(c: &mut Criterion) {
    let mut group = c.benchmark_group("classic_execution");
    for name in KERNELS {
        let program = build_focal(name, Scale::Test).program;
        let core = ClassicCore::new(CoreConfig::paper());
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| black_box(core.run(p).expect("runs")))
        });
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    for name in KERNELS {
        let program = build_focal(name, Scale::Test).program;
        let config = CoreConfig::paper();
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| black_box(profile_program(p, &config).expect("profiles")))
        });
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("amnesic_compile");
    for name in KERNELS {
        let program = build_focal(name, Scale::Test).program;
        let (profile, _) =
            profile_program(&program, &CoreConfig::paper()).expect("profiles");
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| black_box(compile(p, &profile, &CompileOptions::default()).expect("ok")))
        });
    }
    group.finish();
}

fn bench_amnesic_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("amnesic_execution");
    for name in KERNELS {
        let program = build_focal(name, Scale::Test).program;
        let (profile, _) =
            profile_program(&program, &CoreConfig::paper()).expect("profiles");
        let (binary, _) =
            compile(&program, &profile, &CompileOptions::default()).expect("compiles");
        for policy in Policy::ALL {
            let core = AmnesicCore::new(AmnesicConfig::paper(policy));
            group.bench_with_input(
                BenchmarkId::new(name, policy),
                &binary,
                |b, bin| b.iter(|| black_box(core.run(bin).expect("runs"))),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = stages;
    config = Criterion::default().sample_size(10);
    targets = bench_classic, bench_profiling, bench_compilation, bench_amnesic_policies
}
criterion_main!(stages);
