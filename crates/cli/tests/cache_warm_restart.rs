//! Warm-restart acceptance: a fresh CLI invocation pointed at a
//! populated `--cache-dir` must serve the compile from disk — zero
//! misses, at least one disk load — and produce the identical artifact.

use amnesiac_cli::{parse_args, run, Response};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn compile_with_cache(dir: &str) -> (String, amnesiac_telemetry::Json) {
    let cmd = parse_args(&args(&["compile", "bench:is", "--cache-dir", dir])).unwrap();
    match run(&cmd).unwrap() {
        Response::Compile { listing, cache, .. } => {
            (listing, cache.expect("--cache-dir attaches cache stats"))
        }
        other => panic!("expected Compile, got {other:?}"),
    }
}

fn stat(stats: &amnesiac_telemetry::Json, field: &str) -> f64 {
    stats
        .get(field)
        .and_then(amnesiac_telemetry::Json::as_f64)
        .unwrap_or_else(|| panic!("cache stats missing `{field}`: {stats:?}"))
}

#[test]
fn second_invocation_restores_the_artifact_from_disk() {
    let dir = std::env::temp_dir().join(format!("amnesiac-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_string_lossy().to_string();

    // Cold invocation: the store is empty, so the compile is a miss that
    // writes the artifact through to disk.
    let (cold_listing, cold_stats) = compile_with_cache(&dir_str);
    assert_eq!(stat(&cold_stats, "misses"), 1.0, "cold run must miss");
    assert_eq!(stat(&cold_stats, "disk_loads"), 0.0);

    // Warm restart: a brand-new process-level cache over the same
    // directory must fault the artifact in from disk without recompiling.
    let (warm_listing, warm_stats) = compile_with_cache(&dir_str);
    assert_eq!(
        stat(&warm_stats, "misses"),
        0.0,
        "warm restart recompiled instead of loading from disk: {warm_stats:?}"
    );
    assert!(
        stat(&warm_stats, "disk_loads") >= 1.0,
        "warm restart did not load from disk: {warm_stats:?}"
    );
    assert!(stat(&warm_stats, "hits") >= 1.0);
    assert_eq!(cold_listing, warm_listing, "artifacts must be identical");

    let _ = std::fs::remove_dir_all(&dir);
}
