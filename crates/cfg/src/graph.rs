//! Control-flow graph over the main-code region of a program.
//!
//! Blocks are built from the predecoded instruction stream
//! ([`amnesiac_isa::DecodedInst`]) and cover `[0, code_len)` exactly: slice
//! bodies are *not* part of the graph — they are only reachable through the
//! `RCMP`/`RTN` protocol, which the verifier checks separately. On top of the
//! block graph the module computes reachability from the program entry and
//! immediate dominators (the iterative Cooper–Harvey–Kennedy algorithm), which
//! back the verifier's "`REC` on all paths" invariant.
//!
//! The leader computation ([`leaders`]) is shared with the block-level
//! execution lowering in [`crate::block`], so the verifier's blocks and the
//! interpreters' [`crate::DecodedBlock`]s are always the same partition.

use amnesiac_isa::{DecodedInst, DecodedOp};

/// Marks the block leaders of `decoded[..code_len]`: pc 0, the entry, every
/// in-range control target, and every instruction following a control
/// instruction. Returns one flag per main-code pc (empty if `code_len` is 0).
///
/// This is the single leader computation in the workspace; both the static
/// [`Cfg`] and the executable [`crate::BlockTable`] partition the code with
/// it, so an instruction is a block start for the verifier exactly when it is
/// a legal control-transfer landing point for the block-dispatch loops.
pub fn leaders(decoded: &[DecodedInst], code_len: usize, entry: usize) -> Vec<bool> {
    let code_len = code_len.min(decoded.len());
    let mut leader = vec![false; code_len];
    if code_len == 0 {
        return leader;
    }
    leader[0] = true;
    if entry < code_len {
        leader[entry] = true;
    }
    for (pc, inst) in decoded[..code_len].iter().enumerate() {
        match inst.op {
            DecodedOp::Branch { target, .. } | DecodedOp::Jump { target } => {
                if target < code_len {
                    leader[target] = true;
                }
                if pc + 1 < code_len {
                    leader[pc + 1] = true;
                }
            }
            DecodedOp::Halt | DecodedOp::Rcmp { .. } | DecodedOp::Rtn if pc + 1 < code_len => {
                leader[pc + 1] = true;
            }
            _ => {}
        }
    }
    leader
}

/// A maximal straight-line run of main-code instructions.
///
/// A block is single-entry (control only enters at `start`) and exits only
/// after its last instruction, so an execution that reaches any instruction
/// of the block has executed every earlier instruction of the same block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index (exclusive).
    pub end: usize,
    /// Successor block ids. Branch/jump targets outside the main-code
    /// region are *not* edges; the verifier reports them as diagnostics.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// Control-flow graph of the main-code region, with reachability and
/// dominator information.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in ascending `start` order (block id = index).
    pub blocks: Vec<BasicBlock>,
    /// Block containing the program entry, if the entry pc is in range.
    pub entry_block: Option<usize>,
    block_of: Vec<usize>,
    reachable: Vec<bool>,
    idom: Vec<Option<usize>>,
    rpo: Vec<usize>,
    rpo_num: Vec<usize>,
}

impl Cfg {
    /// Builds the graph over `decoded[..code_len]` with the given entry pc.
    ///
    /// `decoded` may be longer than `code_len` (the full stream including
    /// slice bodies); only the main-code prefix is examined. Out-of-range
    /// branch targets and entry pcs never panic — they simply contribute no
    /// edges (the verifier diagnoses them).
    pub fn build(decoded: &[DecodedInst], code_len: usize, entry: usize) -> Cfg {
        let code_len = code_len.min(decoded.len());
        if code_len == 0 {
            return Cfg {
                blocks: Vec::new(),
                entry_block: None,
                block_of: Vec::new(),
                reachable: Vec::new(),
                idom: Vec::new(),
                rpo: Vec::new(),
                rpo_num: Vec::new(),
            };
        }

        let leader = leaders(decoded, code_len, entry);

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; code_len];
        for pc in 0..code_len {
            if leader[pc] {
                blocks.push(BasicBlock {
                    start: pc,
                    end: pc + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("pc 0 is a leader").end = pc + 1;
            }
            block_of[pc] = blocks.len() - 1;
        }

        // Successor edges from each block's terminating instruction.
        let n = blocks.len();
        for b in 0..n {
            let last = blocks[b].end - 1;
            let mut succs = Vec::new();
            let push = |succs: &mut Vec<usize>, pc: usize| {
                if pc < code_len {
                    let t = block_of[pc];
                    if !succs.contains(&t) {
                        succs.push(t);
                    }
                }
            };
            match decoded[last].op {
                DecodedOp::Branch { target, .. } => {
                    push(&mut succs, last + 1);
                    push(&mut succs, target);
                }
                DecodedOp::Jump { target } => push(&mut succs, target),
                // Halt ends execution; a main-code RTN is malformed (the
                // verifier flags it) and never returns here statically.
                DecodedOp::Halt | DecodedOp::Rtn => {}
                // RCMP either loads or fires a slice whose RTN resumes at
                // the next instruction — a fallthrough edge either way.
                _ => push(&mut succs, last + 1),
            }
            for &t in &succs {
                blocks[t].preds.push(b);
            }
            blocks[b].succs = succs;
        }

        let entry_block = (entry < code_len).then(|| block_of[entry]);

        // Reachability + postorder from the entry block (iterative DFS).
        let mut reachable = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        if let Some(e) = entry_block {
            // stack of (block, next-successor-index)
            let mut stack = vec![(e, 0usize)];
            reachable[e] = true;
            while let Some(top) = stack.last_mut() {
                let (b, i) = *top;
                if i < blocks[b].succs.len() {
                    top.1 += 1;
                    let s = blocks[b].succs[i];
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    postorder.push(b);
                    stack.pop();
                }
            }
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b] = i;
        }

        let mut cfg = Cfg {
            blocks,
            entry_block,
            block_of,
            reachable,
            idom: vec![None; n],
            rpo,
            rpo_num,
        };
        cfg.compute_dominators();
        cfg
    }

    /// Iterative dominator computation (Cooper–Harvey–Kennedy) over the
    /// reachable subgraph in reverse postorder.
    fn compute_dominators(&mut self) {
        let Some(entry) = self.entry_block else {
            return;
        };
        self.idom[entry] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in self.rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &self.blocks[b].preds {
                    if self.idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(p, cur),
                    });
                }
                if new_idom.is_some() && self.idom[b] != new_idom {
                    self.idom[b] = new_idom;
                    changed = true;
                }
            }
        }
    }

    fn intersect(&self, mut a: usize, mut b: usize) -> usize {
        while a != b {
            while self.rpo_num[a] > self.rpo_num[b] {
                a = self.idom[a].expect("processed block has an idom");
            }
            while self.rpo_num[b] > self.rpo_num[a] {
                b = self.idom[b].expect("processed block has an idom");
            }
        }
        a
    }

    /// The block containing `pc`, or `None` if `pc` is outside the main code.
    pub fn block_of_pc(&self, pc: usize) -> Option<usize> {
        self.block_of.get(pc).copied()
    }

    /// Reachable blocks in reverse postorder from the entry. Forward
    /// dataflow (dominators here, the interval analysis in
    /// `amnesiac-absint`) converges fastest iterating in this order.
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Position of block `b` in [`Cfg::rpo`], or `None` if `b` is
    /// unreachable from the entry.
    pub fn rpo_number(&self, b: usize) -> Option<usize> {
        match self.rpo_num.get(b) {
            Some(&n) if n != usize::MAX => Some(n),
            _ => None,
        }
    }

    /// Returns `true` if block `b` is reachable from the entry block.
    pub fn is_reachable_block(&self, b: usize) -> bool {
        self.reachable.get(b).copied().unwrap_or(false)
    }

    /// Returns `true` if the edge `from → to` is a retreating (back) edge
    /// in the depth-first ordering: it closes a cycle, so `to` is a loop
    /// head for any analysis that widens there.
    pub fn is_back_edge(&self, from: usize, to: usize) -> bool {
        match (self.rpo_number(from), self.rpo_number(to)) {
            (Some(f), Some(t)) => t <= f && self.blocks[from].succs.contains(&to),
            _ => false,
        }
    }

    /// Blocks that are the target of at least one back edge — the widening
    /// points of any forward analysis over this graph.
    pub fn loop_heads(&self) -> Vec<usize> {
        let mut heads = vec![false; self.blocks.len()];
        for (from, block) in self.blocks.iter().enumerate() {
            for &to in &block.succs {
                if self.is_back_edge(from, to) {
                    heads[to] = true;
                }
            }
        }
        heads
            .iter()
            .enumerate()
            .filter_map(|(b, &h)| h.then_some(b))
            .collect()
    }

    /// Returns `true` if the instruction at `pc` is reachable from the entry.
    pub fn is_reachable_pc(&self, pc: usize) -> bool {
        self.block_of_pc(pc).is_some_and(|b| self.reachable[b])
    }

    /// Returns `true` if block `a` dominates block `b` (every path from the
    /// entry to `b` passes through `a`). Reflexive; `false` if either block
    /// is unreachable.
    pub fn block_dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[a].is_none() || self.idom[b].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let up = self.idom[cur].expect("reachable block has an idom");
            if up == cur {
                return false; // reached the entry
            }
            cur = up;
        }
    }

    /// Returns `true` if every path from the entry that reaches `b` has
    /// already executed the instruction at `a`.
    ///
    /// Within one basic block this is just program order (a block is
    /// single-entry and exits only at its end, so reaching any instruction
    /// implies every earlier one ran); across blocks it is strict block
    /// dominance.
    pub fn dominates_pc(&self, a: usize, b: usize) -> bool {
        let (Some(ba), Some(bb)) = (self.block_of_pc(a), self.block_of_pc(b)) else {
            return false;
        };
        if ba == bb {
            return a <= b && self.reachable[ba];
        }
        self.block_dominates(ba, bb)
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the graph has no blocks (empty main code).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{predecode, AluOp, BranchCond, Instruction, Program, Reg};

    fn program(insts: Vec<Instruction>) -> Program {
        let mut p = Program::new("cfg-test");
        p.code_len = insts.len();
        p.instructions = insts;
        p
    }

    fn alu(dst: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            lhs: Reg(0),
            rhs: Reg(0),
        }
    }

    fn branch(target: usize) -> Instruction {
        Instruction::Branch {
            cond: BranchCond::Eq,
            lhs: Reg(0),
            rhs: Reg(0),
            target,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = program(vec![alu(1), alu(2), Instruction::Halt]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.is_reachable_pc(2));
        assert!(cfg.dominates_pc(0, 2));
        assert!(!cfg.dominates_pc(2, 0));
    }

    #[test]
    fn diamond_dominators() {
        // 0: branch 3 | 1: alu, 2: jump 4 | 3: alu | 4: halt
        let p = program(vec![
            branch(3),
            alu(1),
            Instruction::Jump { target: 4 },
            alu(2),
            Instruction::Halt,
        ]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        assert_eq!(cfg.len(), 4);
        // The branch dominates everything; neither arm dominates the join.
        assert!(cfg.dominates_pc(0, 4));
        assert!(!cfg.dominates_pc(1, 4));
        assert!(!cfg.dominates_pc(3, 4));
        assert!(cfg.dominates_pc(1, 2), "same-arm order");
    }

    #[test]
    fn loop_back_edge_and_reachability() {
        // 0: alu | 1: branch 4 (exit) | 2: alu, 3: jump 1 | 4: halt | 5: alu (dead)
        let p = program(vec![
            alu(1),
            branch(4),
            alu(2),
            Instruction::Jump { target: 1 },
            Instruction::Halt,
            alu(3),
        ]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        assert!(cfg.is_reachable_pc(2), "loop body reachable");
        assert!(!cfg.is_reachable_pc(5), "code after halt is dead");
        assert!(cfg.dominates_pc(1, 4), "loop header dominates exit");
        assert!(!cfg.dominates_pc(2, 4), "loop body does not dominate exit");
        assert!(!cfg.dominates_pc(5, 4), "unreachable dominates nothing");
    }

    #[test]
    fn back_edges_and_loop_heads() {
        // 0: alu | 1: branch 4 (exit) | 2: alu, 3: jump 1 | 4: halt
        let p = program(vec![
            alu(1),
            branch(4),
            alu(2),
            Instruction::Jump { target: 1 },
            Instruction::Halt,
        ]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        let head = cfg.block_of_pc(1).unwrap();
        let body = cfg.block_of_pc(2).unwrap();
        assert!(cfg.is_back_edge(body, head));
        assert!(!cfg.is_back_edge(head, body));
        assert_eq!(cfg.loop_heads(), vec![head]);
        // rpo covers exactly the reachable blocks, entry first
        assert_eq!(cfg.rpo().len(), cfg.len());
        assert_eq!(cfg.rpo()[0], cfg.entry_block.unwrap());
        assert_eq!(cfg.rpo_number(cfg.rpo()[0]), Some(0));
        assert!(cfg.is_reachable_block(body));
    }

    #[test]
    fn unreachable_block_has_no_rpo_number() {
        // 0: halt | 1: alu (dead)
        let p = program(vec![Instruction::Halt, alu(1)]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        let dead = cfg.block_of_pc(1).unwrap();
        assert_eq!(cfg.rpo_number(dead), None);
        assert!(!cfg.is_reachable_block(dead));
        assert!(cfg.loop_heads().is_empty());
    }

    #[test]
    fn out_of_range_target_has_no_edge() {
        let p = program(vec![branch(9), Instruction::Halt]);
        let cfg = Cfg::build(&predecode(&p), p.code_len, 0);
        assert_eq!(cfg.blocks[0].succs, vec![1], "only the fallthrough edge");
    }

    #[test]
    fn empty_code_is_empty_graph() {
        let p = program(vec![]);
        let cfg = Cfg::build(&predecode(&p), 0, 0);
        assert!(cfg.is_empty());
        assert_eq!(cfg.entry_block, None);
        assert!(!cfg.dominates_pc(0, 0));
    }
}
