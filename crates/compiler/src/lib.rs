#![warn(missing_docs)]
#![deny(unsafe_code)]

//! # amnesiac-compiler
//!
//! The amnesic compiler pass (paper §3.1): starting from a
//! [`amnesiac_profile::ProgramProfile`], it
//!
//! 1. **forms recomputation slices** — for each swappable load site it cuts
//!    the profiled producer tree level by level, keeping the cut whose
//!    estimated recomputation energy `E_rc` (instruction mix × EPI, plus
//!    `SFile`/`Hist`/`REC` overheads) is lowest, and selecting the site only
//!    if `E_rc` stays below the probabilistic load energy
//!    `E_ld = Σ PrLi × EPI_Li` (§3.1.1);
//! 2. **annotates the binary** — each selected load becomes an `RCMP`, the
//!    slice body (leaves-first, dependency order) is embedded after the main
//!    code terminated by `RTN`, and a `REC` checkpoint is inserted
//!    immediately *before* every producer whose replica needs `Hist`-sourced
//!    operands (checkpointing inputs pre-execution keeps instructions that
//!    overwrite their own sources, e.g. accumulators, recomputable);
//! 3. **validates** — a functional replay of the annotated binary verifies
//!    that every slice reproduces the loaded value on every dynamic
//!    instance of the profiling input; slices that ever mismatch are
//!    dropped and the binary is re-annotated. Amnesic execution is
//!    therefore bit-exact by construction.
//!
//! Two slice-set policies mirror the paper's evaluation: the probabilistic
//! compiler set (used by the `Compiler`/`FLC`/`LLC`/`C-Oracle` runtime
//! policies) and the `Oracle` set, chosen with exact knowledge of where
//! each load is serviced (§5.1).

mod annotate;
mod elide;
mod estimate;
mod pipeline;
mod replay;
mod slice;
mod storage;

pub use annotate::{annotate, annotate_with_map};
pub use elide::remove_stores;
pub use estimate::{CutCost, SliceEstimator};
pub use pipeline::{
    compile, compile_cached, redundant_stores, ArtifactStore, CompileError, CompileOptions,
    CompileReport, SiteDecision, SiteOutcome, SliceSetPolicy,
};
pub use replay::{
    replay_validate, replay_validate_table, replay_validate_with, ReplayError, ReplayOutcome,
    SliceReplayStats,
};
pub use slice::{SliceInstSpec, SliceSpec};
pub use storage::StorageBounds;
