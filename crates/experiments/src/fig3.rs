//! Figs. 3–5: EDP, energy, and execution-time gains under amnesic
//! execution, per benchmark and runtime policy.

use crate::pipeline::{EvalSuite, PolicyOutcome};
use crate::report::{bar_chart, Table};

fn gains_chart(
    suite: &EvalSuite,
    title: &str,
    gain: impl Fn(&crate::pipeline::BenchEval, PolicyOutcome) -> f64,
) -> String {
    let mut groups = Vec::new();
    let mut max_abs = 1.0f64;
    for bench in &suite.benches {
        let series: Vec<(String, f64)> = PolicyOutcome::ALL
            .iter()
            .map(|&p| {
                let g = gain(bench, p);
                max_abs = max_abs.max(g.abs());
                (p.label().to_string(), g)
            })
            .collect();
        groups.push((bench.name.to_string(), series));
    }
    let chart = bar_chart(title, &groups, max_abs);

    let mut table = Table::new(&["bench", "Oracle", "C-Oracle", "Compiler", "FLC", "LLC"]);
    for bench in &suite.benches {
        table.row(
            std::iter::once(bench.name.to_string())
                .chain(
                    PolicyOutcome::ALL
                        .iter()
                        .map(|&p| format!("{:+.2}", gain(bench, p))),
                )
                .collect(),
        );
    }
    format!("{chart}\n{}", table.render())
}

/// Fig. 3: % EDP gain.
pub fn render(suite: &EvalSuite) -> String {
    gains_chart(
        suite,
        "Fig. 3: EDP gain (%) under amnesic execution",
        |b, p| b.edp_gain(p),
    )
}

/// Fig. 4: % energy gain.
pub fn render_energy(suite: &EvalSuite) -> String {
    gains_chart(
        suite,
        "Fig. 4: Energy gain (%) under amnesic execution",
        |b, p| b.energy_gain(p),
    )
}

/// Fig. 5: % reduction in execution time.
pub fn render_time(suite: &EvalSuite) -> String {
    gains_chart(
        suite,
        "Fig. 5: Performance gain (%) under amnesic execution",
        |b, p| b.time_gain(p),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn renders_all_policies_for_a_benchmark() {
        let suite = EvalSuite {
            benches: vec![crate::pipeline::BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        for text in [render(&suite), render_energy(&suite), render_time(&suite)] {
            assert!(text.contains("is"));
            assert!(text.contains("C-Oracle"));
            assert!(text.contains("LLC"));
        }
    }
}
