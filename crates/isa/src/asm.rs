//! A textual assembly format for classic (un-annotated) programs:
//! [`to_asm`] emits it, [`parse_asm`] parses it back. The instruction
//! syntax is exactly what the [`crate::disassemble`] listing uses;
//! directives carry the program metadata:
//!
//! ```text
//! .name sum
//! .entry 0
//! .data 0x1000 7 8 9          ; base word address, then values
//! .dataf 0x1003 1.5 -2.25     ; f64 values
//! .output 0x1006 1
//! .readonly 0x1000 3
//! li r1, 0x1000
//! ld r2, [r1+0]
//! add r3, r2, r2
//! bgeu r1, r2, @5
//! st r3, [r1+1]
//! halt
//! ```
//!
//! Annotated binaries (with embedded slices) are intentionally out of
//! scope: slice metadata is a compiler artifact, not a source format.

use std::fmt;

use crate::inst::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp, Instruction};
use crate::program::Program;
use crate::{IsaError, Reg};

/// Errors from [`parse_asm`].
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed program failed structural validation.
    Invalid(IsaError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<IsaError> for AsmError {
    fn from(e: IsaError) -> Self {
        AsmError::Invalid(e)
    }
}

/// Emits the textual form of a classic program.
///
/// # Panics
///
/// Panics if the program is annotated (slices have no source form).
pub fn to_asm(program: &Program) -> String {
    assert!(
        !program.is_annotated(),
        "annotated binaries have no assembly source form"
    );
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".name {}", program.name);
    let _ = writeln!(out, ".entry {}", program.entry);
    // contiguous data runs become one .data directive each
    let mut run: Vec<(u64, u64)> = Vec::new();
    let flush = |out: &mut String, run: &mut Vec<(u64, u64)>| {
        if let Some(&(base, _)) = run.first() {
            let _ = write!(out, ".data {base:#x}");
            for &(_, v) in run.iter() {
                let _ = write!(out, " {v:#x}");
            }
            out.push('\n');
        }
        run.clear();
    };
    for (addr, value) in program.data.iter() {
        match run.last() {
            Some(&(last, _)) if addr == last + 1 => run.push((addr, value)),
            None => run.push((addr, value)),
            _ => {
                flush(&mut out, &mut run);
                run.push((addr, value));
            }
        }
    }
    flush(&mut out, &mut run);
    for r in &program.output {
        let _ = writeln!(out, ".output {:#x} {}", r.start, r.len);
    }
    for r in &program.read_only {
        let _ = writeln!(out, ".readonly {:#x} {}", r.start, r.len);
    }
    for inst in &program.instructions {
        let _ = writeln!(out, "{inst}");
    }
    out
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, AsmError> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| err(line, format!("bad hex `{tok}`: {e}")))
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        u64::from_str_radix(hex, 16)
            .map(|v| v.wrapping_neg())
            .map_err(|e| err(line, format!("bad hex `{tok}`: {e}")))
    } else {
        tok.parse::<i64>()
            .map(|v| v as u64)
            .map_err(|e| err(line, format!("bad integer `{tok}`: {e}")))
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    let id = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?
        .parse::<u8>()
        .map_err(|e| err(line, format!("bad register `{tok}`: {e}")))?;
    Ok(Reg(id))
}

fn parse_target(tok: &str, line: usize) -> Result<usize, AsmError> {
    tok.trim()
        .strip_prefix('@')
        .ok_or_else(|| err(line, format!("expected @target, got `{tok}`")))?
        .parse::<usize>()
        .map_err(|e| err(line, format!("bad target `{tok}`: {e}")))
}

/// Parses `[rN+off]` / `[rN-off]` memory operands.
fn parse_mem(tok: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg±off], got `{tok}`")))?;
    let split = inner
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i)
        .ok_or_else(|| err(line, format!("missing offset in `{tok}`")))?;
    let reg = parse_reg(&inner[..split], line)?;
    let offset = inner[split..]
        .parse::<i64>()
        .map_err(|e| err(line, format!("bad offset in `{tok}`: {e}")))?;
    Ok((reg, offset))
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "seq" => AluOp::Seq,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        _ => return None,
    })
}

fn fp_op(mnemonic: &str) -> Option<FpOp> {
    Some(match mnemonic {
        "fadd" => FpOp::Add,
        "fsub" => FpOp::Sub,
        "fmul" => FpOp::Mul,
        "fdiv" => FpOp::Div,
        "fmin" => FpOp::Min,
        "fmax" => FpOp::Max,
        "flt" => FpOp::Flt,
        _ => return None,
    })
}

fn fp_un_op(mnemonic: &str) -> Option<FpUnOp> {
    Some(match mnemonic {
        "fsqrt" => FpUnOp::Sqrt,
        "fneg" => FpUnOp::Neg,
        "fabs" => FpUnOp::Abs,
        "fexp" => FpUnOp::Exp,
        "fln" => FpUnOp::Ln,
        _ => return None,
    })
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    Some(match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn parse_instruction(text: &str, line: usize) -> Result<Instruction, AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r),
        None => (text, ""),
    };
    let operands: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", operands.len()),
            ))
        }
    };

    if mnemonic == "halt" {
        want(0)?;
        return Ok(Instruction::Halt);
    }
    if mnemonic == "j" {
        want(1)?;
        return Ok(Instruction::Jump {
            target: parse_target(operands[0], line)?,
        });
    }
    if mnemonic == "li" {
        want(2)?;
        return Ok(Instruction::Li {
            dst: parse_reg(operands[0], line)?,
            imm: parse_u64(operands[1], line)?,
        });
    }
    if mnemonic == "ld" {
        want(2)?;
        let (base, offset) = parse_mem(operands[1], line)?;
        return Ok(Instruction::Load {
            dst: parse_reg(operands[0], line)?,
            base,
            offset,
        });
    }
    if mnemonic == "st" {
        want(2)?;
        let (base, offset) = parse_mem(operands[1], line)?;
        return Ok(Instruction::Store {
            src: parse_reg(operands[0], line)?,
            base,
            offset,
        });
    }
    if mnemonic == "fma" {
        want(4)?;
        return Ok(Instruction::Fma {
            dst: parse_reg(operands[0], line)?,
            a: parse_reg(operands[1], line)?,
            b: parse_reg(operands[2], line)?,
            c: parse_reg(operands[3], line)?,
        });
    }
    if mnemonic == "i2f" || mnemonic == "f2i" {
        want(2)?;
        return Ok(Instruction::Cvt {
            kind: if mnemonic == "i2f" {
                CvtKind::I2F
            } else {
                CvtKind::F2I
            },
            dst: parse_reg(operands[0], line)?,
            src: parse_reg(operands[1], line)?,
        });
    }
    if let Some(cond) = branch_cond(mnemonic) {
        want(3)?;
        return Ok(Instruction::Branch {
            cond,
            lhs: parse_reg(operands[0], line)?,
            rhs: parse_reg(operands[1], line)?,
            target: parse_target(operands[2], line)?,
        });
    }
    if let Some(op) = fp_un_op(mnemonic) {
        want(2)?;
        return Ok(Instruction::FpuUn {
            op,
            dst: parse_reg(operands[0], line)?,
            src: parse_reg(operands[1], line)?,
        });
    }
    if let Some(op) = fp_op(mnemonic) {
        want(3)?;
        return Ok(Instruction::Fpu {
            op,
            dst: parse_reg(operands[0], line)?,
            lhs: parse_reg(operands[1], line)?,
            rhs: parse_reg(operands[2], line)?,
        });
    }
    // register-immediate forms: `addi`, `muli`, … (op name + `i`)
    if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
        want(3)?;
        return Ok(Instruction::Alui {
            op,
            dst: parse_reg(operands[0], line)?,
            src: parse_reg(operands[1], line)?,
            imm: parse_u64(operands[2], line)?,
        });
    }
    if let Some(op) = alu_op(mnemonic) {
        want(3)?;
        return Ok(Instruction::Alu {
            op,
            dst: parse_reg(operands[0], line)?,
            lhs: parse_reg(operands[1], line)?,
            rhs: parse_reg(operands[2], line)?,
        });
    }
    Err(err(line, format!("unknown mnemonic `{mnemonic}`")))
}

/// Parses a classic program from its textual form.
///
/// # Errors
///
/// Returns [`AsmError::Syntax`] on malformed lines and
/// [`AsmError::Invalid`] when the assembled program fails
/// [`crate::validate::validate`].
pub fn parse_asm(text: &str) -> Result<Program, AsmError> {
    let mut program = Program::new("asm");
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split(';').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if let Some(directive) = content.strip_prefix('.') {
            let mut parts = directive.split_whitespace();
            let kind = parts.next().unwrap_or("");
            let args: Vec<&str> = parts.collect();
            match kind {
                "name" => {
                    program.name = args.join(" ");
                }
                "entry" => {
                    let [tok] = args.as_slice() else {
                        return Err(err(line, ".entry expects one argument"));
                    };
                    program.entry = parse_u64(tok, line)? as usize;
                }
                "data" | "dataf" => {
                    let (base_tok, values) = args
                        .split_first()
                        .ok_or_else(|| err(line, ".data expects a base address"))?;
                    let base = parse_u64(base_tok, line)?;
                    for (i, v) in values.iter().enumerate() {
                        let word = if kind == "dataf" {
                            v.parse::<f64>()
                                .map_err(|e| err(line, format!("bad f64 `{v}`: {e}")))?
                                .to_bits()
                        } else {
                            parse_u64(v, line)?
                        };
                        program.data.set(base + i as u64, word);
                    }
                }
                "output" | "readonly" => {
                    let [start, len] = args.as_slice() else {
                        return Err(err(line, format!(".{kind} expects `start len`")));
                    };
                    let range = crate::program::MemRange::new(
                        parse_u64(start, line)?,
                        parse_u64(len, line)?,
                    );
                    if kind == "output" {
                        program.output.push(range);
                    } else {
                        program.read_only.push(range);
                    }
                }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        // instruction lines may carry a leading `pc:` (disassembly style)
        let content = match content.split_once(':') {
            Some((pc, rest)) if pc.trim().parse::<usize>().is_ok() => rest.trim(),
            _ => content,
        };
        program.instructions.push(parse_instruction(content, line)?);
    }
    program.code_len = program.instructions.len();
    crate::validate::validate(&program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("sample");
        let data = b.alloc_data(&[7, 8]);
        let fdata = b.alloc_f64(&[1.5]);
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.mark_read_only(data, 2);
        b.li(Reg(1), data);
        b.load(Reg(2), Reg(1), 0);
        b.alui(AluOp::Mul, Reg(3), Reg(2), 3);
        b.li(Reg(4), fdata);
        b.load(Reg(5), Reg(4), 0);
        b.fpu(FpOp::Add, Reg(5), Reg(5), Reg(5));
        b.fma(Reg(6), Reg(5), Reg(5), Reg(5));
        b.fpu_un(FpUnOp::Sqrt, Reg(6), Reg(6));
        b.cvt(CvtKind::F2I, Reg(7), Reg(6));
        let skip = b.label();
        b.branch(BranchCond::Geu, Reg(7), Reg(3), skip);
        b.alu(AluOp::Add, Reg(3), Reg(3), Reg(7));
        b.bind(skip).unwrap();
        b.li(Reg(8), out);
        b.store(Reg(3), Reg(8), 0);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample();
        let text = to_asm(&original);
        let parsed = parse_asm(&text).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.entry, original.entry);
        assert_eq!(parsed.instructions, original.instructions);
        assert_eq!(parsed.code_len, original.code_len);
        assert_eq!(parsed.output, original.output);
        assert_eq!(parsed.read_only, original.read_only);
        let a: Vec<_> = parsed.data.iter().collect();
        let b: Vec<_> = original.data.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_disassembly_style_lines_with_pc_prefix() {
        let text = "\n.name t\n 0: li r1, 0x2\n 1: addi r2, r1, 0x3\n 2: halt\n";
        let p = parse_asm(text).unwrap();
        assert_eq!(p.instructions.len(), 3);
        assert_eq!(
            p.instructions[1],
            Instruction::Alui {
                op: AluOp::Add,
                dst: Reg(2),
                src: Reg(1),
                imm: 3
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "; header\n.name t\n\nli r1, 5 ; trailing\nhalt\n";
        let p = parse_asm(text).unwrap();
        assert_eq!(p.instructions.len(), 2);
        assert_eq!(p.name, "t");
    }

    #[test]
    fn negative_offsets_parse() {
        let text = ".name t\nli r1, 0x1000\nld r2, [r1-3]\nhalt\n";
        let p = parse_asm(text).unwrap();
        assert_eq!(
            p.instructions[1],
            Instruction::Load {
                dst: Reg(2),
                base: Reg(1),
                offset: -3
            }
        );
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        for (text, needle) in [
            (".name t\nbogus r1, r2\nhalt\n", "unknown mnemonic"),
            (".name t\nli r1\nhalt\n", "expects 2 operands"),
            (".name t\nld r2, r1\nhalt\n", "expected [reg"),
            (".name t\n.weird 1\nhalt\n", "unknown directive"),
            (".name t\nli rx, 1\nhalt\n", "bad register"),
        ] {
            let e = parse_asm(text).unwrap_err();
            match e {
                AsmError::Syntax { line, message } => {
                    assert_eq!(line, 2, "{text}");
                    assert!(message.contains(needle), "{message} vs {needle}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_programs_are_rejected_after_parse() {
        let text = ".name t\nj @9\nhalt\n";
        assert!(matches!(parse_asm(text), Err(AsmError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "no assembly source form")]
    fn annotated_programs_cannot_be_emitted() {
        let mut p = sample();
        p.slices.push(crate::program::SliceMeta {
            id: crate::program::SliceId(0),
            rcmp_pc: 0,
            entry: 0,
            len: 0,
            root_reg: Reg(0),
            plans: Vec::new(),
            leaves: Vec::new(),
            has_nonrecomputable: false,
            est_recompute_nj: 0.0,
            est_load_nj: 0.0,
            height: 0,
        });
        to_asm(&p);
    }
}
