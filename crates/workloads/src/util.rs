//! Shared helpers for kernel construction: deterministic data generation
//! and common loop-emission idioms.

use amnesiac_isa::{AluOp, BranchCond, Label, ProgramBuilder, Reg};
use amnesiac_rng::Rng;

/// Deterministic RNG for workload data (fixed seed per kernel).
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Generates `n` random u64 values below `bound`.
pub fn random_indices(seed: u64, n: usize, bound: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.below(bound)).collect()
}

/// Generates a random permutation of `0..n` (for pointer-chasing rings).
pub fn random_permutation(seed: u64, n: usize) -> Vec<u64> {
    let mut r = rng(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    r.shuffle(&mut v);
    v
}

/// Generates `n` random f64 values in `[lo, hi)` as bit patterns.
#[allow(dead_code)] // kept for example kernels and future workloads
pub fn random_f64_bits(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_f64(lo, hi).to_bits()).collect()
}

/// A counted loop skeleton: emits
/// `for counter in 0..limit { body }` using `counter_reg` and a scratch
/// `limit_reg`, invoking `body` to emit the loop body.
///
/// The body closure receives the builder; `counter_reg` holds the index.
#[allow(dead_code)] // kept for example kernels and future workloads
pub fn counted_loop(
    b: &mut ProgramBuilder,
    counter: Reg,
    limit: Reg,
    n: u64,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    b.li(counter, 0);
    b.li(limit, n);
    let top = b.label();
    let done = b.label();
    b.bind(top).expect("fresh label");
    b.branch(BranchCond::Geu, counter, limit, done);
    body(b);
    b.alui(AluOp::Add, counter, counter, 1);
    b.jump(top);
    b.bind(done).expect("fresh label");
}

/// Emits the loop header for a hand-managed loop; returns `(top, done)`
/// labels with `top` already bound. The caller must emit the back-jump and
/// bind `done`.
pub fn loop_header(b: &mut ProgramBuilder, counter: Reg, limit: Reg, n: u64) -> (Label, Label) {
    b.li(counter, 0);
    b.li(limit, n);
    let top = b.label();
    let done = b.label();
    b.bind(top).expect("fresh label");
    b.branch(BranchCond::Geu, counter, limit, done);
    (top, done)
}

/// Closes a loop opened by [`loop_header`].
pub fn loop_footer(b: &mut ProgramBuilder, counter: Reg, top: Label, done: Label) {
    b.alui(AluOp::Add, counter, counter, 1);
    b.jump(top);
    b.bind(done).expect("fresh label");
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_sim::{ClassicCore, CoreConfig};

    #[test]
    fn permutation_is_a_bijection() {
        let p = random_permutation(1, 100);
        let mut seen = [false; 100];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn indices_respect_bound_and_are_deterministic() {
        let a = random_indices(7, 50, 10);
        let b = random_indices(7, 50, 10);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 10));
    }

    #[test]
    fn f64_bits_in_range() {
        for bits in random_f64_bits(3, 100, 0.5, 2.0) {
            let x = f64::from_bits(bits);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn counted_loop_iterates_n_times() {
        let mut b = ProgramBuilder::new("t");
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.li(Reg(10), 0); // acc
        counted_loop(&mut b, Reg(1), Reg(2), 7, |b| {
            b.alui(AluOp::Add, Reg(10), Reg(10), 1);
        });
        b.li(Reg(3), out);
        b.store(Reg(10), Reg(3), 0);
        b.halt();
        let p = b.finish().unwrap();
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        assert_eq!(r.final_memory[&out], 7);
    }

    #[test]
    fn manual_loop_matches_counted_loop() {
        let mut b = ProgramBuilder::new("t");
        let out = b.alloc_zeroed(1);
        b.mark_output(out, 1);
        b.li(Reg(10), 0);
        let (top, done) = loop_header(&mut b, Reg(1), Reg(2), 5);
        b.alui(AluOp::Add, Reg(10), Reg(10), 2);
        loop_footer(&mut b, Reg(1), top, done);
        b.li(Reg(3), out);
        b.store(Reg(10), Reg(3), 0);
        b.halt();
        let p = b.finish().unwrap();
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        assert_eq!(r.final_memory[&out], 10);
    }
}
