//! Table 5: memory-access profile of the loads swapped for recomputation
//! under the Compiler, FLC, and LLC policies.

use amnesiac_mem::ServiceLevel;

use crate::pipeline::{EvalSuite, PolicyOutcome};
use crate::report::Table;

const POLICIES: [PolicyOutcome; 3] = [
    PolicyOutcome::Compiler,
    PolicyOutcome::Flc,
    PolicyOutcome::Llc,
];

/// Renders the paper's Table 5: for each policy, where the swapped loads
/// (the `RCMP` instances that fired) would have been serviced.
pub fn render(suite: &EvalSuite) -> String {
    let mut t = Table::new(&[
        "bench", "Cmp L1%", "Cmp L2%", "Cmp Mem%", "FLC L1%", "FLC L2%", "FLC Mem%", "LLC L1%",
        "LLC L2%", "LLC Mem%",
    ]);
    for bench in &suite.benches {
        let mut cells = vec![bench.name.to_string()];
        for policy in POLICIES {
            let swapped = &bench.run(policy).stats.swapped_levels;
            for level in ServiceLevel::ALL {
                cells.push(format!("{:.2}", 100.0 * swapped.fraction(level)));
            }
        }
        t.row(cells);
    }
    format!(
        "Table 5: Memory access profile of load instructions swapped for \
         recomputation (per policy)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BenchEval;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn flc_column_shows_no_l1_swaps() {
        let suite = EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        let bench = &suite.benches[0];
        let flc = &bench.run(PolicyOutcome::Flc).stats.swapped_levels;
        assert_eq!(
            flc.by_level[ServiceLevel::L1.index()],
            0,
            "FLC never swaps an L1-resident load"
        );
        assert!(render(&suite).contains("Cmp L1%"));
    }
}
