//! Plain-text rendering helpers: fixed-width tables, horizontal bar
//! charts, and histograms, shared by all experiment drivers.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}", w = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>w$}", w = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Renders a grouped horizontal bar chart: one group per benchmark, one
/// bar per series (the paper's Figs. 3–5 as text).
pub fn bar_chart(title: &str, groups: &[(String, Vec<(String, f64)>)], max_abs: f64) -> String {
    const WIDTH: usize = 50;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let scale = if max_abs <= 0.0 {
        1.0
    } else {
        WIDTH as f64 / max_abs
    };
    for (group, series) in groups {
        let _ = writeln!(out, "{group}");
        for (label, value) in series {
            let n = ((value.abs() * scale).round() as usize).min(WIDTH);
            let bar: String = std::iter::repeat_n(
                if *value >= 0.0 { '█' } else { '▒' },
                n.max(if value.abs() > 0.05 { 1 } else { 0 }),
            )
            .collect();
            let _ = writeln!(out, "  {label:>9} {value:>7.2}% |{bar}");
        }
    }
    out
}

/// Renders a histogram of `(bin label, count)` pairs as percentages.
pub fn histogram(title: &str, bins: &[(String, u64)]) -> String {
    const WIDTH: usize = 50;
    let total: u64 = bins.iter().map(|(_, c)| c).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{title}  (n = {total})");
    if total == 0 {
        let _ = writeln!(out, "  (empty)");
        return out;
    }
    let max = bins.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in bins {
        let pct = 100.0 * *count as f64 / total as f64;
        let n = (*count as usize * WIDTH) / max as usize;
        let bar: String = "█".repeat(n.max(usize::from(*count > 0)));
        let _ = writeln!(out, "  {label:>10} {pct:>6.2}% |{bar}");
    }
    out
}

/// Buckets values into fixed-width bins over `[0, max)`, labelling each
/// `lo-hi`.
pub fn bucketize(values: &[(f64, u64)], bin_width: f64, max: f64) -> Vec<(String, u64)> {
    let n_bins = (max / bin_width).ceil() as usize;
    let mut bins = vec![0u64; n_bins];
    for &(v, weight) in values {
        let idx = ((v / bin_width) as usize).min(n_bins - 1);
        bins[idx] += weight;
    }
    bins.iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                format!(
                    "{}-{}",
                    (i as f64 * bin_width) as u64,
                    ((i + 1) as f64 * bin_width) as u64
                ),
                c,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "gain"]);
        t.row(vec!["mcf".into(), "45.2".into()]);
        t.row(vec!["is".into(), "87.0".into()]);
        let text = t.render();
        assert!(text.contains("bench"));
        assert!(text.contains("mcf"));
        assert!(text.lines().count() == 4);
        // columns align: every line has the same width for col 0
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with("mcf  "));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn bar_chart_handles_negatives() {
        let groups = vec![(
            "sr".to_string(),
            vec![("Compiler".to_string(), -7.0), ("FLC".to_string(), 3.0)],
        )];
        let text = bar_chart("EDP", &groups, 10.0);
        assert!(text.contains("▒"), "negative bars render distinctly");
        assert!(text.contains("█"));
    }

    #[test]
    fn histogram_percentages_sum_to_100() {
        let bins = vec![("0-10".to_string(), 3), ("10-20".to_string(), 1)];
        let text = histogram("h", &bins);
        assert!(text.contains("75.00%"));
        assert!(text.contains("25.00%"));
    }

    #[test]
    fn bucketize_clamps_overflow() {
        let bins = bucketize(&[(5.0, 2), (95.0, 1), (200.0, 1)], 10.0, 100.0);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0].1, 2);
        assert_eq!(bins[9].1, 2, "out-of-range lands in the last bin");
    }
}
