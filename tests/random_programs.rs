//! Randomized end-to-end tests: generated programs must stay bit-exact
//! under amnesic execution, for every policy, slice set, and (tiny)
//! structure sizing. This exercises the profiler's tree merging, the
//! planner's freshness constraints, the binary rewriter, and the runtime
//! fallback paths far beyond the hand-written kernels. Cases are drawn
//! from the deterministic in-repo RNG so every run sees the same corpus.

use amnesiac::compiler::{compile, CompileOptions, SliceSetPolicy};
use amnesiac::core::{AmnesicConfig, AmnesicCore, Policy};
use amnesiac::isa::{AluOp, BranchCond, FpOp, Instruction, Program, ProgramBuilder, Reg};
use amnesiac::profile::profile_program;
use amnesiac::sim::{ClassicCore, CoreConfig};
use amnesiac_rng::Rng;

/// One producer operation in a generated fill kernel.
#[derive(Debug, Clone, Copy)]
enum ProducerOp {
    MulParam(u8),
    AddParam(u8),
    XorIndex,
    ShrImm(u8),
    FmaParams(u8, u8),
}

/// How the generated kernel reads its array back.
#[derive(Debug, Clone, Copy)]
enum Consume {
    Sequential,
    Strided(u64),
    /// Read each element `i` at index `perm(i) = (i*multiplier) % n`
    /// (odd multiplier ⇒ a permutation of a power-of-two range).
    Permuted(u64),
}

#[derive(Debug, Clone)]
struct KernelSpec {
    n_log2: u32,
    ops: Vec<ProducerOp>,
    params_from_memory: bool,
    clobber_params: bool,
    consume: Consume,
    sweeps: u64,
}

fn random_spec(r: &mut Rng) -> KernelSpec {
    let random_op = |r: &mut Rng| match r.below(5) {
        0 => ProducerOp::MulParam(r.below(4) as u8),
        1 => ProducerOp::AddParam(r.below(4) as u8),
        2 => ProducerOp::XorIndex,
        3 => ProducerOp::ShrImm(r.range_u64(1, 6) as u8),
        _ => ProducerOp::FmaParams(r.below(4) as u8, r.below(4) as u8),
    };
    let consume = match r.below(3) {
        0 => Consume::Sequential,
        1 => Consume::Strided(r.range_u64(2, 6)),
        _ => Consume::Permuted(*r.choose(&[3u64, 5, 7])),
    };
    KernelSpec {
        n_log2: r.range_u64(3, 7) as u32,
        ops: (0..r.range_usize(1, 6)).map(|_| random_op(r)).collect(),
        params_from_memory: r.bool(),
        clobber_params: r.bool(),
        consume,
        sweeps: r.range_u64(1, 3),
    }
}

/// Builds a fill-then-consume kernel from a spec. The producer computes an
/// integer (or fp, via FMA) chain over the loop index and four parameters;
/// the consumer re-reads in the chosen order keeping the index in the
/// producer's register, like real amnesic-friendly code.
fn build(spec: &KernelSpec) -> Program {
    let n = 1u64 << spec.n_log2;
    let mut b = ProgramBuilder::new("generated");
    let arr = b.alloc_zeroed(n);
    let params = b.alloc_data(&[3, 5, 9, 2654435761]);
    b.mark_read_only(params, 4);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);

    let r_arr = Reg(1);
    let r_i = Reg(2);
    let r_lim = Reg(3);
    let r_addr = Reg(4);
    let r_acc = Reg(5);
    let r_val = Reg(6);
    let param_reg = |k: u8| Reg(10 + k);

    b.li(r_arr, arr);
    if spec.params_from_memory {
        b.li(r_addr, params);
        for k in 0..4u8 {
            b.load(param_reg(k), r_addr, k as i64);
        }
    } else {
        for (k, v) in [3u64, 5, 9, 2654435761].iter().enumerate() {
            b.li(param_reg(k as u8), *v);
        }
    }

    // fill loop
    b.li(r_i, 0);
    b.li(r_lim, n);
    let top = b.label();
    let done = b.label();
    b.bind(top).unwrap();
    b.branch(BranchCond::Geu, r_i, r_lim, done);
    b.alui(AluOp::Add, r_val, r_i, 1);
    for op in &spec.ops {
        match *op {
            ProducerOp::MulParam(k) => {
                b.alu(AluOp::Mul, r_val, r_val, param_reg(k));
            }
            ProducerOp::AddParam(k) => {
                b.alu(AluOp::Add, r_val, r_val, param_reg(k));
            }
            ProducerOp::XorIndex => {
                b.alu(AluOp::Xor, r_val, r_val, r_i);
            }
            ProducerOp::ShrImm(s) => {
                b.alui(AluOp::Shr, r_val, r_val, s as u64);
            }
            ProducerOp::FmaParams(x, y) => {
                // keep it integral: (val + px) * py via two ALU ops
                b.alu(AluOp::Add, r_val, r_val, param_reg(x));
                b.alu(AluOp::Mul, r_val, r_val, param_reg(y));
            }
        }
    }
    b.alu(AluOp::Add, r_addr, r_arr, r_i);
    b.store(r_val, r_addr, 0);
    b.alui(AluOp::Add, r_i, r_i, 1);
    b.jump(top);
    b.bind(done).unwrap();

    if spec.clobber_params {
        for k in 0..4u8 {
            b.li(param_reg(k), 0);
        }
    }

    // consume sweeps
    b.li(r_acc, 0);
    let r_s = Reg(7);
    let r_slim = Reg(8);
    let r_k = Reg(9);
    b.li(r_s, 0);
    b.li(r_slim, spec.sweeps);
    let stop = b.label();
    let sdone = b.label();
    b.bind(stop).unwrap();
    b.branch(BranchCond::Geu, r_s, r_slim, sdone);
    {
        b.li(r_k, 0);
        let ctop = b.label();
        let cdone = b.label();
        b.bind(ctop).unwrap();
        b.branch(BranchCond::Geu, r_k, r_lim, cdone);
        match spec.consume {
            Consume::Sequential | Consume::Strided(_) => {
                // index register doubles as the producer's register
                b.alu(AluOp::Add, r_addr, r_arr, r_k);
                // keep r_i equal to the consumed index for liveness
                b.alui(AluOp::Add, r_i, r_k, 0);
            }
            Consume::Permuted(m) => {
                b.alui(AluOp::Mul, r_i, r_k, m);
                b.alui(AluOp::And, r_i, r_i, n - 1);
                b.alu(AluOp::Add, r_addr, r_arr, r_i);
            }
        }
        b.load(r_val, r_addr, 0); // the swappable load
        b.alu(AluOp::Add, r_acc, r_acc, r_val);
        let step = match spec.consume {
            Consume::Strided(s) => s,
            _ => 1,
        };
        b.alui(AluOp::Add, r_k, r_k, step);
        b.jump(ctop);
        b.bind(cdone).unwrap();
    }
    b.alui(AluOp::Add, r_s, r_s, 1);
    b.jump(stop);
    b.bind(sdone).unwrap();

    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("generated program builds")
}

fn assert_equivalent(program: &Program) {
    let config = CoreConfig::paper();
    let classic = ClassicCore::new(config.clone())
        .run(program)
        .expect("classic");
    let (profile, _) = profile_program(program, &config).expect("profile");
    for slice_set in [SliceSetPolicy::Probabilistic, SliceSetPolicy::Oracle] {
        let options = CompileOptions {
            slice_set,
            ..CompileOptions::default()
        };
        let (binary, _) = compile(program, &profile, &options).expect("compile");
        for policy in Policy::ALL {
            let result = AmnesicCore::new(AmnesicConfig::paper(policy))
                .run(&binary)
                .expect("amnesic run");
            assert_eq!(
                result.run.final_memory, classic.final_memory,
                "{policy} diverged on {slice_set:?}"
            );
        }
        // tiny structures must degrade to loads, never to wrong values
        let starved = AmnesicConfig {
            sfile_capacity: 2,
            hist_capacity: 1,
            ibuff_capacity: 2,
            ..AmnesicConfig::paper(Policy::Compiler)
        };
        let result = AmnesicCore::new(starved).run(&binary).expect("starved run");
        assert_eq!(
            result.run.final_memory, classic.final_memory,
            "starved diverged"
        );
    }
}

/// The headline property: generated fill/consume kernels stay bit-exact
/// under every policy, slice set, and starved structures.
#[test]
fn generated_kernels_are_policy_equivalent() {
    let mut r = Rng::seed_from_u64(0x9E01);
    for _ in 0..24 {
        let spec = random_spec(&mut r);
        let program = build(&spec);
        assert_equivalent(&program);
    }
}

/// The binary image round-trips every generated program exactly —
/// including the ANNOTATED binary with its slices and operand plans.
#[test]
fn binary_image_roundtrip_is_identity() {
    let mut r = Rng::seed_from_u64(0x9E02);
    for _ in 0..24 {
        let spec = random_spec(&mut r);
        let program = build(&spec);
        let bytes = amnesiac::isa::encode_program(&program);
        let decoded = amnesiac::isa::decode_program(&bytes).expect("decodes");
        assert_eq!(&decoded, &program);
        // the annotated binary (slices, plans, leaves) round-trips too
        let config = CoreConfig::paper();
        let (profile, _) = profile_program(&program, &config).expect("profiles");
        let (annotated, _) =
            compile(&program, &profile, &CompileOptions::default()).expect("compiles");
        let bytes = amnesiac::isa::encode_program(&annotated);
        let decoded = amnesiac::isa::decode_program(&bytes).expect("decodes annotated");
        assert_eq!(&decoded, &annotated);
        // and the decoded annotated binary runs identically
        let a = AmnesicCore::new(AmnesicConfig::paper(Policy::Compiler))
            .run(&annotated)
            .expect("runs");
        let b = AmnesicCore::new(AmnesicConfig::paper(Policy::Compiler))
            .run(&decoded)
            .expect("runs");
        assert_eq!(a.run.final_memory, b.run.final_memory);
    }
}

/// The assembler round-trips every generated program exactly.
#[test]
fn asm_roundtrip_is_identity() {
    let mut r = Rng::seed_from_u64(0x9E03);
    for _ in 0..24 {
        let spec = random_spec(&mut r);
        let program = build(&spec);
        let text = amnesiac::isa::to_asm(&program);
        let parsed = amnesiac::isa::parse_asm(&text).expect("parses");
        assert_eq!(&parsed.instructions, &program.instructions);
        assert_eq!(parsed.entry, program.entry);
        assert_eq!(&parsed.output, &program.output);
        assert_eq!(&parsed.read_only, &program.read_only);
        let a: Vec<_> = parsed.data.iter().collect();
        let b: Vec<_> = program.data.iter().collect();
        assert_eq!(a, b);
        // and the parsed program runs identically
        let config = CoreConfig::paper();
        let r1 = ClassicCore::new(config.clone())
            .run(&program)
            .expect("runs");
        let r2 = ClassicCore::new(config).run(&parsed).expect("runs");
        assert_eq!(r1.final_memory, r2.final_memory);
    }
}

/// Fully random straight-line programs: mostly unswappable sites, but the
/// whole pipeline must stay robust and exact.
fn straight_line(seed: &[u8]) -> Program {
    let mut b = ProgramBuilder::new("straightline");
    let scratch = b.alloc_zeroed(16);
    let out = b.alloc_zeroed(8);
    b.mark_output(out, 8);
    b.li(Reg(1), scratch);
    b.li(Reg(2), out);
    for r in 3..10u8 {
        b.li(Reg(r), r as u64 * 1_000_003);
    }
    for (i, &byte) in seed.iter().enumerate() {
        let dst = Reg(3 + (byte % 7));
        let lhs = Reg(3 + ((byte >> 3) % 7));
        let rhs = Reg(3 + ((byte >> 5) % 7));
        match byte % 6 {
            0 => {
                b.alu(AluOp::Add, dst, lhs, rhs);
            }
            1 => {
                b.alu(AluOp::Mul, dst, lhs, rhs);
            }
            2 => {
                b.alu(AluOp::Xor, dst, lhs, rhs);
            }
            3 => {
                b.store(lhs, Reg(1), (byte % 16) as i64);
            }
            4 => {
                b.load(dst, Reg(1), (byte % 16) as i64);
            }
            5 => {
                b.fpu(FpOp::Add, dst, lhs, rhs);
            }
            _ => unreachable!(),
        }
        if i % 5 == 4 {
            b.store(dst, Reg(2), (i % 8) as i64);
        }
    }
    for r in 0..7u8 {
        b.store(Reg(3 + r), Reg(2), (r % 8) as i64);
    }
    b.halt();
    b.finish().expect("straight-line program builds")
}

fn random_bytes(r: &mut Rng, min_len: usize, max_len: usize) -> Vec<u8> {
    (0..r.range_usize(min_len, max_len))
        .map(|_| r.below(256) as u8)
        .collect()
}

#[test]
fn straight_line_programs_are_policy_equivalent() {
    let mut r = Rng::seed_from_u64(0x9E04);
    for _ in 0..32 {
        let seed = random_bytes(&mut r, 10, 120);
        let program = straight_line(&seed);
        // straight-line code may contain no loops but plenty of aliasing
        // stores/loads; the pipeline must never mis-recompute
        assert_equivalent(&program);
    }
}

/// Validation invariant: every slice that survives compilation replays
/// exactly on the profiling input.
#[test]
fn surviving_slices_replay_exactly() {
    let mut r = Rng::seed_from_u64(0x9E05);
    for _ in 0..32 {
        let seed = random_bytes(&mut r, 10, 80);
        let program = straight_line(&seed);
        let config = CoreConfig::paper();
        let (profile, _) = profile_program(&program, &config).expect("profile");
        let (binary, _) = compile(&program, &profile, &CompileOptions::default()).expect("compile");
        if binary.is_annotated() {
            let outcome = amnesiac::compiler::replay_validate(&binary, 10_000_000).expect("replay");
            assert!(outcome.failing_slices().is_empty());
        }
        // and the annotated binary still validates structurally
        amnesiac::isa::validate::validate(&binary).expect("structurally valid");
        let _ = Instruction::Halt; // keep the import exercised
    }
}
