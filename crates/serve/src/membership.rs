//! The router's membership view: a generation-numbered worker table.
//!
//! Every observable change to the member set — a join, a worker marked
//! down, a drain, a detected restart — bumps the generation and
//! rebuilds the placement [`Ring`] over the workers that are up.
//! Routing decisions carry the generation they were made under, so a
//! forward that fails can tell "the world changed under me" (reroute)
//! from "the world is simply out of workers" (unavailable).
//!
//! Restart detection leans on the `server_id` / `started_at_ms` pair
//! every server reports through `stats`: a probe that comes back with a
//! different `server_id` on the same port is a *new* process behind a
//! reused address, which counts as a membership change like any other.

use std::net::SocketAddr;

use amnesiac_telemetry::Json;

use crate::ring::{Ring, WorkerId};

/// One worker's lifecycle state in the view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Healthy: in the ring, receiving new work.
    Up,
    /// Told to drain: out of the ring, in-flight work allowed to finish.
    Draining,
    /// Lost: out of the ring; probes keep watching the address so a
    /// restart can rejoin it.
    Down,
}

impl WorkerState {
    /// The state's stable wire spelling (`up` / `draining` / `down`).
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Up => "up",
            WorkerState::Draining => "draining",
            WorkerState::Down => "down",
        }
    }
}

/// What a successful probe revealed about a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Same process as before; nothing changed.
    Unchanged,
    /// First successful probe of this worker.
    FirstContact,
    /// A different process answered on the same address: the worker
    /// restarted behind a reused port (generation bumped).
    Restarted,
    /// The worker was down (or draining) and a live process answered:
    /// it rejoined the ring (generation bumped).
    Rejoined,
}

/// One row of the worker table.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Stable join index; never reused.
    pub id: WorkerId,
    /// The worker's listen address.
    pub addr: SocketAddr,
    /// Lifecycle state.
    pub state: WorkerState,
    /// The worker's self-reported identity (from `stats`), once probed.
    pub server_id: Option<String>,
    /// The worker's self-reported start instant (UNIX ms), once probed.
    pub started_at_ms: Option<u64>,
    /// Consecutive failed probes (reset on success).
    pub probe_failures: u32,
    /// How many distinct processes have answered on this address.
    pub restarts: u64,
}

impl WorkerInfo {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("id", self.id)
            .with("addr", self.addr.to_string())
            .with("state", self.state.name())
            .with(
                "server_id",
                self.server_id
                    .as_deref()
                    .map_or(Json::Null, |s| Json::Str(s.to_string())),
            )
            .with(
                "started_at_ms",
                self.started_at_ms
                    .map_or(Json::Null, |ms| Json::Num(ms as f64)),
            )
            .with("probe_failures", self.probe_failures)
            .with("restarts", self.restarts)
    }
}

/// The generation-numbered membership view plus its placement ring.
#[derive(Debug, Clone)]
pub struct Membership {
    generation: u64,
    workers: Vec<WorkerInfo>,
    ring: Ring,
}

impl Membership {
    /// A view seeded with the initial worker set, all up, generation 1.
    pub fn new(addrs: &[SocketAddr]) -> Membership {
        let workers = addrs
            .iter()
            .enumerate()
            .map(|(index, &addr)| WorkerInfo {
                id: index as WorkerId,
                addr,
                state: WorkerState::Up,
                server_id: None,
                started_at_ms: None,
                probe_failures: 0,
                restarts: 0,
            })
            .collect::<Vec<_>>();
        let mut view = Membership {
            generation: 1,
            workers,
            ring: Ring::default(),
        };
        view.rebuild();
        view
    }

    /// The current generation (bumped on every membership change).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The worker table.
    pub fn workers(&self) -> &[WorkerInfo] {
        &self.workers
    }

    /// One worker by id.
    pub fn worker(&self, id: WorkerId) -> Option<&WorkerInfo> {
        self.workers.iter().find(|w| w.id == id)
    }

    /// How many workers are up (in the ring).
    pub fn up_count(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.state == WorkerState::Up)
            .count()
    }

    /// Places a routing key: `(worker id, address, generation)` of the
    /// owner, or `None` when no worker is up.
    pub fn route(&self, key: &str) -> Option<(WorkerId, SocketAddr, u64)> {
        let id = self.ring.route(key)?;
        let worker = self.worker(id)?;
        Some((id, worker.addr, self.generation))
    }

    /// Adds a worker to the view (up, in the ring). Returns its id.
    pub fn join(&mut self, addr: SocketAddr) -> WorkerId {
        let id = self.workers.iter().map(|w| w.id + 1).max().unwrap_or(0);
        self.workers.push(WorkerInfo {
            id,
            addr,
            state: WorkerState::Up,
            server_id: None,
            started_at_ms: None,
            probe_failures: 0,
            restarts: 0,
        });
        self.bump();
        id
    }

    /// Marks a worker down (lost). Returns `true` when that changed the
    /// view (and bumped the generation).
    pub fn mark_down(&mut self, id: WorkerId) -> bool {
        self.transition(id, WorkerState::Down)
    }

    /// Marks a worker draining: out of the ring, not counted as lost.
    pub fn mark_draining(&mut self, id: WorkerId) -> bool {
        self.transition(id, WorkerState::Draining)
    }

    /// Records a failed probe; returns the consecutive-failure count.
    pub fn probe_failed(&mut self, id: WorkerId) -> u32 {
        match self.workers.iter_mut().find(|w| w.id == id) {
            Some(worker) => {
                worker.probe_failures = worker.probe_failures.saturating_add(1);
                worker.probe_failures
            }
            None => 0,
        }
    }

    /// Records a successful probe carrying the worker's self-reported
    /// identity, detecting restarts behind reused ports and rejoins of
    /// workers previously marked down.
    pub fn observe_probe(
        &mut self,
        id: WorkerId,
        server_id: &str,
        started_at_ms: u64,
    ) -> ProbeOutcome {
        let Some(worker) = self.workers.iter_mut().find(|w| w.id == id) else {
            return ProbeOutcome::Unchanged;
        };
        worker.probe_failures = 0;
        let was_down = worker.state == WorkerState::Down;
        let outcome = match (worker.server_id.as_deref(), was_down) {
            (Some(known), _) if known != server_id => ProbeOutcome::Restarted,
            (_, true) => ProbeOutcome::Rejoined,
            (None, false) => ProbeOutcome::FirstContact,
            (Some(_), false) => ProbeOutcome::Unchanged,
        };
        worker.server_id = Some(server_id.to_string());
        worker.started_at_ms = Some(started_at_ms);
        match outcome {
            ProbeOutcome::Restarted => {
                worker.restarts += 1;
                worker.state = WorkerState::Up;
                self.bump();
            }
            ProbeOutcome::Rejoined => {
                worker.state = WorkerState::Up;
                self.bump();
            }
            ProbeOutcome::FirstContact | ProbeOutcome::Unchanged => {}
        }
        outcome
    }

    /// The membership view as JSON (the router's `cluster` verb).
    pub fn to_json(&self) -> Json {
        let workers = self.workers.iter().map(WorkerInfo::to_json).collect();
        Json::obj()
            .with("generation", self.generation)
            .with("up", self.up_count())
            .with("workers", Json::Arr(workers))
    }

    fn transition(&mut self, id: WorkerId, state: WorkerState) -> bool {
        let Some(worker) = self.workers.iter_mut().find(|w| w.id == id) else {
            return false;
        };
        if worker.state == state {
            return false;
        }
        worker.state = state;
        self.bump();
        true
    }

    fn bump(&mut self) {
        self.generation += 1;
        self.rebuild();
    }

    fn rebuild(&mut self) {
        let up: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|w| w.state == WorkerState::Up)
            .map(|w| w.id)
            .collect();
        self.ring = Ring::build(&up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn generations_count_every_membership_change() {
        let mut view = Membership::new(&[addr(1), addr(2), addr(3)]);
        assert_eq!(view.generation(), 1);
        assert_eq!(view.up_count(), 3);

        assert!(view.mark_down(1));
        assert_eq!(view.generation(), 2);
        assert_eq!(view.up_count(), 2);
        // Idempotent: marking the same worker down again changes nothing.
        assert!(!view.mark_down(1));
        assert_eq!(view.generation(), 2);

        assert!(view.mark_draining(2));
        assert_eq!(view.generation(), 3);
        assert_eq!(view.up_count(), 1);

        let id = view.join(addr(4));
        assert_eq!(id, 3);
        assert_eq!(view.generation(), 4);
        assert_eq!(view.up_count(), 2);
    }

    #[test]
    fn routing_skips_down_and_draining_workers() {
        let mut view = Membership::new(&[addr(1), addr(2)]);
        view.mark_down(0);
        view.mark_draining(1);
        assert_eq!(view.route("bench:is"), None);
        // A rejoin puts worker 1 back in the ring.
        view.observe_probe(1, "abc", 42);
        // (draining + successful probe does not auto-rejoin: the state
        // was Draining, not Down, and server_id was unknown)
        assert_eq!(view.worker(1).unwrap().state, WorkerState::Draining);
    }

    #[test]
    fn probe_observations_detect_restarts_and_rejoins() {
        let mut view = Membership::new(&[addr(1)]);
        assert_eq!(
            view.observe_probe(0, "aaa", 100),
            ProbeOutcome::FirstContact
        );
        let g = view.generation();
        assert_eq!(view.observe_probe(0, "aaa", 100), ProbeOutcome::Unchanged);
        assert_eq!(view.generation(), g);

        // Same address, new process: a restart.
        assert_eq!(view.observe_probe(0, "bbb", 200), ProbeOutcome::Restarted);
        assert_eq!(view.worker(0).unwrap().restarts, 1);
        assert!(view.generation() > g);

        // Down, then the same process answers again: a rejoin.
        view.mark_down(0);
        let g = view.generation();
        assert_eq!(view.observe_probe(0, "bbb", 200), ProbeOutcome::Rejoined);
        assert_eq!(view.worker(0).unwrap().state, WorkerState::Up);
        assert!(view.generation() > g);
    }

    #[test]
    fn probe_failures_accumulate_and_reset() {
        let mut view = Membership::new(&[addr(1)]);
        assert_eq!(view.probe_failed(0), 1);
        assert_eq!(view.probe_failed(0), 2);
        view.observe_probe(0, "aaa", 1);
        assert_eq!(view.worker(0).unwrap().probe_failures, 0);
    }
}
