//! The `amnesiac` binary: see [`amnesiac_cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match amnesiac_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    };
    match amnesiac_cli::execute(&command) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
