//! Backward liveness over architectural registers (main code) and `SFile`
//! slots (slice bodies).
//!
//! Register liveness is a classic bit-vector dataflow over the CFG with a
//! `u64` mask per block (`NUM_REGS == 64`). Slice liveness is simpler —
//! bodies are straight-line — and yields the two facts the verifier wants:
//! which producers are dead weight, and the minimal number of concurrently
//! live `SFile` slots any renamer would need.

use amnesiac_cfg::Cfg;
use amnesiac_isa::{DecodedInst, OperandSource, SliceMeta, NUM_REGS};

const _: () = assert!(NUM_REGS == 64, "liveness masks are u64");

/// Register-liveness masks per basic block.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_out: Vec<u64>,
}

/// `(use_mask, def_mask)` of one instruction.
fn use_def(d: &DecodedInst) -> (u64, u64) {
    let mut uses = 0u64;
    for s in d.srcs.iter().flatten() {
        uses |= 1 << s.index();
    }
    let def = d.dst.map(|r| 1 << r.index()).unwrap_or(0);
    (uses, def)
}

impl Liveness {
    /// Runs backward liveness to fixpoint over the main-code CFG.
    pub fn run(decoded: &[DecodedInst], cfg: &Cfg) -> Liveness {
        let n = cfg.len();
        let mut live_in = vec![0u64; n];
        let mut live_out = vec![0u64; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().rev() {
                let mut out = 0u64;
                for &s in &cfg.blocks[b].succs {
                    out |= live_in[s];
                }
                live_out[b] = out;
                let mut live = out;
                for pc in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
                    let (uses, def) = use_def(&decoded[pc]);
                    live = (live & !def) | uses;
                }
                if live_in[b] != live {
                    live_in[b] = live;
                    changed = true;
                }
            }
        }
        Liveness { live_out }
    }

    /// Registers live immediately *before* `pc` executes, as a bit mask.
    pub fn live_before(&self, decoded: &[DecodedInst], cfg: &Cfg, pc: usize) -> Option<u64> {
        let b = cfg.block_of_pc(pc)?;
        let mut live = *self.live_out.get(b)?;
        for p in (pc..cfg.blocks[b].end).rev() {
            let (uses, def) = use_def(&decoded[p]);
            live = (live & !def) | uses;
        }
        Some(live)
    }

    /// Registers live at block exit.
    pub fn block_out(&self, block: usize) -> Option<u64> {
        self.live_out.get(block).copied()
    }
}

/// Liveness facts about one slice body, derived from its operand plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceLiveness {
    /// Slice-relative indices of compute instructions whose value is never
    /// consumed — not by any later `SFile` operand and not the root.
    pub dead_producers: Vec<u16>,
    /// The minimal number of concurrently live `SFile` slots: the peak, over
    /// all points of the body, of values already produced and still awaiting
    /// a later `SFile` read (or the final root copy-out).
    pub peak_sfile: usize,
}

impl SliceLiveness {
    /// Analyzes a slice body via its plans (bodies are straight-line, so no
    /// fixpoint is needed).
    pub fn analyze(meta: &SliceMeta) -> SliceLiveness {
        let n = meta.compute_len();
        if n == 0 {
            return SliceLiveness {
                dead_producers: Vec::new(),
                peak_sfile: 0,
            };
        }
        // last_use[p] = body index of the last SFile read of producer p
        let mut last_use: Vec<Option<usize>> = vec![None; n];
        for (k, plan) in meta.plans.iter().enumerate() {
            for src in plan.sources.iter().flatten() {
                if let OperandSource::SFile { producer } = src {
                    let p = *producer as usize;
                    if p < n {
                        last_use[p] = Some(k);
                    }
                }
            }
        }
        let root = n - 1; // the root's value is retired by the RCMP
        let dead_producers: Vec<u16> = (0..n)
            .filter(|&p| p != root && last_use[p].is_none())
            .map(|p| p as u16)
            .collect();
        // peak concurrently live values: producer p is live on the half-open
        // interval (p, last_use[p]] — and the root to the end of the body
        let mut peak = 0usize;
        for k in 0..n {
            let live = (0..=k)
                .filter(|&p| {
                    if p == root {
                        return true;
                    }
                    matches!(last_use[p], Some(u) if u > k)
                })
                .count();
            peak = peak.max(live);
        }
        SliceLiveness {
            dead_producers,
            peak_sfile: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{predecode, AluOp, BranchCond, OperandPlan, ProgramBuilder, Reg, SliceId};

    #[test]
    fn straight_line_liveness() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg(1), 10); // used by the add
        b.li(Reg(2), 20); // dead: overwritten before any use
        b.li(Reg(2), 30);
        let add = b.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
        let store = b.store(Reg(3), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let decoded = predecode(&p);
        let cfg = Cfg::build(&decoded, p.code_len, p.entry);
        let lv = Liveness::run(&decoded, &cfg);
        let before_add = lv.live_before(&decoded, &cfg, add).unwrap();
        assert_eq!(before_add & (1 << 1), 1 << 1, "r1 live into the add");
        assert_eq!(before_add & (1 << 2), 1 << 2, "r2 live into the add");
        let before_store = lv.live_before(&decoded, &cfg, store).unwrap();
        assert_eq!(before_store & (1 << 3), 1 << 3);
        // after the first li, r2's first value is dead
        let after_first = lv.live_before(&decoded, &cfg, 1).unwrap();
        assert_eq!(after_first & (1 << 2), 0, "overwritten value is dead");
    }

    #[test]
    fn loop_carried_register_stays_live() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg(2), 0);
        b.li(Reg(3), 9);
        let top = b.label();
        let done = b.label();
        b.bind(top).unwrap();
        let guard = b.branch(BranchCond::Geu, Reg(2), Reg(3), done);
        b.alui(AluOp::Add, Reg(2), Reg(2), 1);
        b.jump(top);
        b.bind(done).unwrap();
        b.halt();
        let p = b.finish().unwrap();
        let decoded = predecode(&p);
        let cfg = Cfg::build(&decoded, p.code_len, p.entry);
        let lv = Liveness::run(&decoded, &cfg);
        let at_guard = lv.live_before(&decoded, &cfg, guard).unwrap();
        assert_eq!(at_guard & (1 << 2), 1 << 2, "the counter is loop-carried");
        assert_eq!(at_guard & (1 << 3), 1 << 3, "so is the bound");
    }

    fn meta_with(plans: Vec<OperandPlan>) -> SliceMeta {
        SliceMeta {
            id: SliceId(0),
            rcmp_pc: 0,
            entry: 0,
            len: plans.len() + 1,
            root_reg: Reg(1),
            plans,
            leaves: Vec::new(),
            has_nonrecomputable: false,
            est_recompute_nj: 0.0,
            est_load_nj: 0.0,
            height: 0,
        }
    }

    fn sfile(p: u16) -> Option<OperandSource> {
        Some(OperandSource::SFile { producer: p })
    }

    #[test]
    fn dead_producer_and_peak() {
        // 0: leaf (consumed by 2), 1: leaf (dead), 2: root reads producer 0
        let plans = vec![
            OperandPlan::empty(),
            OperandPlan::empty(),
            OperandPlan {
                sources: [sfile(0), Some(OperandSource::LiveReg), None],
            },
        ];
        let sl = SliceLiveness::analyze(&meta_with(plans));
        assert_eq!(sl.dead_producers, vec![1]);
        // at index 1: producer 0 awaits its read and producer 1 is dead on
        // arrival; at index 2 only the root is live
        assert_eq!(sl.peak_sfile, 1);
    }

    #[test]
    fn chain_has_unit_peak_and_no_dead() {
        let plans = vec![
            OperandPlan::empty(),
            OperandPlan {
                sources: [sfile(0), None, None],
            },
            OperandPlan {
                sources: [sfile(1), None, None],
            },
        ];
        let sl = SliceLiveness::analyze(&meta_with(plans));
        assert!(sl.dead_producers.is_empty());
        assert_eq!(sl.peak_sfile, 1, "a pure chain needs one slot at a time");
    }

    #[test]
    fn wide_tree_peaks_at_fanin() {
        // two leaves joined by the root
        let plans = vec![
            OperandPlan::empty(),
            OperandPlan::empty(),
            OperandPlan {
                sources: [sfile(0), sfile(1), None],
            },
        ];
        let sl = SliceLiveness::analyze(&meta_with(plans));
        assert!(sl.dead_producers.is_empty());
        assert_eq!(sl.peak_sfile, 2);
    }
}
