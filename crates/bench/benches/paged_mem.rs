//! Microbenchmarks of the simulator's word store: `amnesiac_mem::PagedMem`
//! against the `HashMap<u64, u64>` it replaced, under the access patterns
//! the machines actually produce — dense streaming over a data image,
//! strided sweeps, and sparse random traffic. Set
//! `AMNESIAC_BENCH_JSON=<path>` to also dump the measurements as JSON.

use std::collections::HashMap;

use amnesiac_bench::Bencher;
use amnesiac_mem::PagedMem;
use amnesiac_rng::Rng;

/// Words in the dense working set (a few pages' worth).
const DENSE_WORDS: u64 = 1 << 14;
/// Operations per random workload.
const RANDOM_OPS: u64 = 1 << 16;
/// Words in the random workload's data image (16 pages). Machines populate
/// the image densely at construction, so random traffic lands on existing
/// pages — uniform traffic over a vast *untouched* span would instead
/// zero-fill a page per touch and is not a pattern the simulators produce.
const IMAGE_WORDS: u64 = 1 << 16;

/// Pre-generated (addr, is_store) pairs so both stores measure identical
/// traffic and the RNG cost stays out of the loop. Load-heavy, like the
/// kernels (§2: loads dominate).
fn random_trace(seed: u64) -> Vec<(u64, bool)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..RANDOM_OPS)
        .map(|_| (rng.below(IMAGE_WORDS), rng.below(4) == 0))
        .collect()
}

fn main() {
    let mut b = Bencher::new(20);

    b.bench("paged_mem/dense_fill_then_sum", || {
        let mut mem = PagedMem::default();
        for addr in 0..DENSE_WORDS {
            mem.set(addr, addr ^ 0x9e37);
        }
        let mut sum = 0u64;
        for addr in 0..DENSE_WORDS {
            sum = sum.wrapping_add(mem.get(addr));
        }
        sum
    });
    b.bench("hash_map/dense_fill_then_sum", || {
        let mut mem: HashMap<u64, u64> = HashMap::new();
        for addr in 0..DENSE_WORDS {
            mem.insert(addr, addr ^ 0x9e37);
        }
        let mut sum = 0u64;
        for addr in 0..DENSE_WORDS {
            sum = sum.wrapping_add(mem.get(&addr).copied().unwrap_or(0));
        }
        sum
    });

    // page-local stride: the MRU page cache's best case, and the common
    // case for the kernels' array sweeps
    b.bench("paged_mem/strided_rw", || {
        let mut mem = PagedMem::default();
        let mut sum = 0u64;
        for addr in (0..DENSE_WORDS).step_by(8) {
            mem.set(addr, addr);
            sum = sum.wrapping_add(mem.get(addr.wrapping_add(1)));
        }
        sum
    });
    b.bench("hash_map/strided_rw", || {
        let mut mem: HashMap<u64, u64> = HashMap::new();
        let mut sum = 0u64;
        for addr in (0..DENSE_WORDS).step_by(8) {
            mem.insert(addr, addr);
            sum = sum.wrapping_add(mem.get(&addr.wrapping_add(1)).copied().unwrap_or(0));
        }
        sum
    });

    // pointer-chasing over a prefilled data image (cf. `Machine::new`,
    // which collects the image before execution starts)
    let trace = random_trace(0xA17);
    let image: Vec<(u64, u64)> = (0..IMAGE_WORDS).map(|a| (a, a ^ 0x517c)).collect();
    b.bench("paged_mem/random_in_image", || {
        let mut mem: PagedMem = image.iter().copied().collect();
        let mut sum = 0u64;
        for &(addr, is_store) in &trace {
            if is_store {
                mem.set(addr, addr);
            } else {
                sum = sum.wrapping_add(mem.get(addr));
            }
        }
        sum
    });
    b.bench("hash_map/random_in_image", || {
        let mut mem: HashMap<u64, u64> = image.iter().copied().collect();
        let mut sum = 0u64;
        for &(addr, is_store) in &trace {
            if is_store {
                mem.insert(addr, addr);
            } else {
                sum = sum.wrapping_add(mem.get(&addr).copied().unwrap_or(0));
            }
        }
        sum
    });

    if let Ok(path) = std::env::var("AMNESIAC_BENCH_JSON") {
        b.write_json(&path).expect("write bench JSON");
        println!("wrote {path}");
    }
}
