//! Table 2: the benchmark deployment — suites, names, and inputs.

use amnesiac_workloads::{all_workloads, Scale, Suite};

use crate::report::Table;

/// Renders the paper's Table 2 analogue: the full 33-kernel deployment
/// with this reproduction's input sizes (static instructions and data
/// words at paper scale).
pub fn render() -> String {
    let mut t = Table::new(&["bench", "suite", "static insts", "data words"]);
    for w in all_workloads(Scale::Paper) {
        let suite = match w.suite {
            Suite::Spec => "SPEC",
            Suite::Nas => "NAS",
            Suite::Parsec => "PARSEC",
            Suite::Rodinia => "Rodinia",
            Suite::Control => "control",
        };
        t.row(vec![
            w.name.to_string(),
            suite.to_string(),
            w.program.code_len.to_string(),
            w.program.data.len().to_string(),
        ]);
    }
    format!(
        "Table 2: Benchmarks deployed — the paper's 33-kernel suite as \
         implemented here (paper-scale inputs)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_all_33() {
        let text = super::render();
        assert_eq!(
            text.lines().filter(|l| !l.trim().is_empty()).count() - 3,
            33
        );
        assert!(text.contains("mcf"));
        assert!(text.contains("particlefilter"));
    }
}
