//! Amnesic-execution statistics: everything the paper's Tables 4–5 and
//! Figs. 6–7 report, plus structure occupancies for the §3.4 checks.

use std::collections::BTreeMap;

use amnesiac_mem::{LevelStats, ServiceLevel};
use amnesiac_sim::ExceptionKind;
use amnesiac_telemetry::{Json, ToJson};

/// Per-slice runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceRuntimeStats {
    /// `RCMP` instances that fired recomputation.
    pub fired: u64,
    /// `RCMP` instances where the policy performed the load instead.
    pub loaded: u64,
    /// `RCMP` instances forced to load because a `REC` had failed (`Hist`
    /// overflow, §3.5) or the slice did not fit the `SFile`.
    pub forced_loads: u64,
}

/// An exception recorded during slice traversal and deferred past `RTN`
/// (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredException {
    /// The slice that raised it.
    pub slice: u32,
    /// Slice-relative instruction index.
    pub slice_inst: u16,
    /// What was raised.
    pub kind: ExceptionKind,
}

/// Aggregate statistics of one amnesic run.
#[derive(Debug, Clone, Default)]
pub struct AmnesicStats {
    /// Per-slice counters, indexed by slice id.
    pub per_slice: Vec<SliceRuntimeStats>,
    /// Residency (at decision time) of the loads that were *swapped* —
    /// i.e. `RCMP` instances that fired recomputation. This is the paper's
    /// Table 5 profile: where those loads would have been serviced under
    /// classic execution.
    pub swapped_levels: LevelStats,
    /// Residency of `RCMP` instances that performed the load.
    pub performed_levels: LevelStats,
    /// Dynamic count of recomputing instructions executed.
    pub recompute_insts: u64,
    /// Deferred exceptions recorded during traversals.
    pub deferred_exceptions: Vec<DeferredException>,
    /// Structure occupancy high-water marks (SFile, Hist, IBuff).
    pub sfile_high_water: usize,
    /// See [`AmnesicStats::sfile_high_water`].
    pub hist_high_water: usize,
    /// See [`AmnesicStats::sfile_high_water`].
    pub ibuff_high_water: usize,
    /// `IBuff` hits / misses over fired traversals.
    pub ibuff_hits: u64,
    /// See [`AmnesicStats::ibuff_hits`].
    pub ibuff_misses: u64,
    /// `Hist` reads (leaf operand fetches).
    pub hist_reads: u64,
    /// `REC` writes rejected by `Hist` capacity.
    pub hist_failed_writes: u64,
    /// Rename requests serviced.
    pub rename_requests: u64,
    /// Miss predictions made (Predictor policy only).
    pub predictions: u64,
    /// Mispredictions observed (Predictor policy only).
    pub mispredictions: u64,
}

impl AmnesicStats {
    /// Total `RCMP` instances encountered.
    pub fn rcmp_total(&self) -> u64 {
        self.per_slice
            .iter()
            .map(|s| s.fired + s.loaded + s.forced_loads)
            .sum()
    }

    /// Total fired recomputations.
    pub fn fired_total(&self) -> u64 {
        self.per_slice.iter().map(|s| s.fired).sum()
    }

    /// Records an `RCMP` decision.
    pub(crate) fn record_decision(&mut self, slice: usize, fired: bool, level: ServiceLevel) {
        let s = &mut self.per_slice[slice];
        if fired {
            s.fired += 1;
            self.swapped_levels.record(level);
        } else {
            s.loaded += 1;
            self.performed_levels.record(level);
        }
    }

    /// Histogram of slice body lengths over *recomputed* slices (those that
    /// fired at least once), as `(length, slice count)` — the paper's
    /// Fig. 6 data, given the owning program's slice table.
    pub fn recomputed_length_histogram(&self, lengths: &[usize]) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for (i, s) in self.per_slice.iter().enumerate() {
            if s.fired > 0 {
                *hist.entry(lengths[i]).or_insert(0) += 1;
            }
        }
        hist
    }
}

impl ToJson for SliceRuntimeStats {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("fired", self.fired)
            .with("loaded", self.loaded)
            .with("forced_loads", self.forced_loads)
    }
}

impl ToJson for AmnesicStats {
    /// Aggregate counters, the swapped/performed service-level mixes, the
    /// §3.4 structure high-water marks, and the per-slice
    /// fired/loaded/forced counters (indexed by slice id).
    fn to_json(&self) -> Json {
        Json::obj()
            .with("rcmp_total", self.rcmp_total())
            .with("fired_total", self.fired_total())
            .with("recompute_insts", self.recompute_insts)
            .with("swapped_levels", self.swapped_levels.to_json())
            .with("performed_levels", self.performed_levels.to_json())
            .with("deferred_exceptions", self.deferred_exceptions.len())
            .with(
                "high_water",
                Json::obj()
                    .with("sfile", self.sfile_high_water)
                    .with("hist", self.hist_high_water)
                    .with("ibuff", self.ibuff_high_water),
            )
            .with("ibuff_hits", self.ibuff_hits)
            .with("ibuff_misses", self.ibuff_misses)
            .with("hist_reads", self.hist_reads)
            .with("hist_failed_writes", self.hist_failed_writes)
            .with("rename_requests", self.rename_requests)
            .with("predictions", self.predictions)
            .with("mispredictions", self.mispredictions)
            .with(
                "per_slice",
                Json::Arr(self.per_slice.iter().map(|s| s.to_json()).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_decisions() {
        let mut stats = AmnesicStats {
            per_slice: vec![SliceRuntimeStats::default(); 2],
            ..AmnesicStats::default()
        };
        stats.record_decision(0, true, ServiceLevel::Mem);
        stats.record_decision(0, false, ServiceLevel::L1);
        stats.record_decision(1, true, ServiceLevel::L2);
        assert_eq!(stats.rcmp_total(), 3);
        assert_eq!(stats.fired_total(), 2);
        assert_eq!(stats.swapped_levels.total(), 2);
        assert_eq!(stats.performed_levels.total(), 1);
        assert_eq!(stats.swapped_levels.by_level[ServiceLevel::Mem.index()], 1);
    }

    #[test]
    fn length_histogram_counts_only_fired_slices() {
        let mut stats = AmnesicStats {
            per_slice: vec![SliceRuntimeStats::default(); 3],
            ..AmnesicStats::default()
        };
        stats.per_slice[0].fired = 5;
        stats.per_slice[2].fired = 1;
        let hist = stats.recomputed_length_histogram(&[4, 9, 4]);
        assert_eq!(hist[&4], 2);
        assert!(!hist.contains_key(&9), "slice 1 never fired");
    }
}
