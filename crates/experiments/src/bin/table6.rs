//! Regenerates the paper's Table 6 (break-even R sweep). Pass `--json
//! <dir>` for the machine-readable twin.
use amnesiac_experiments::export;
use amnesiac_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    };
    let rows = amnesiac_experiments::table6::compute(scale);
    println!("{}", amnesiac_experiments::table6::render_rows(&rows));
    if let Some(dir) = export::json_dir_from_args(&args) {
        export::write_json(&dir.join("table6.json"), &export::table6_rows_json(&rows))
            .expect("results dir is writable");
        println!("machine-readable results written to {}", dir.display());
    }
}
