//! One Criterion benchmark per paper artifact: each target regenerates the
//! corresponding table/figure from a shared test-scale evaluation suite.

use std::sync::OnceLock;

use amnesiac_experiments::{ablations, fig3, fig6, fig7, fig8, table1, table4, table5, table6, EvalSuite};
use amnesiac_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn suite() -> &'static EvalSuite {
    static SUITE: OnceLock<EvalSuite> = OnceLock::new();
    SUITE.get_or_init(|| EvalSuite::compute(Scale::Test))
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_technology_model", |b| {
        b.iter(|| black_box(table1::render()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig3_edp_gains", |b| b.iter(|| black_box(fig3::render(s))));
}

fn bench_fig4(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig4_energy_gains", |b| {
        b.iter(|| black_box(fig3::render_energy(s)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig5_time_gains", |b| {
        b.iter(|| black_box(fig3::render_time(s)))
    });
}

fn bench_table4(c: &mut Criterion) {
    let s = suite();
    c.bench_function("table4_instruction_mix", |b| {
        b.iter(|| black_box(table4::render(s)))
    });
}

fn bench_table5(c: &mut Criterion) {
    let s = suite();
    c.bench_function("table5_swapped_residency", |b| {
        b.iter(|| black_box(table5::render(s)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig6_slice_lengths", |b| b.iter(|| black_box(fig6::render(s))));
}

fn bench_fig7(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig7_nonrecomputable_shares", |b| {
        b.iter(|| black_box(fig7::render(s)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let s = suite();
    c.bench_function("fig8_value_locality", |b| b.iter(|| black_box(fig8::render(s))));
}

fn bench_table6(c: &mut Criterion) {
    // the break-even search recompiles and re-runs per probe: bench one
    // benchmark's full bisection at test scale
    use amnesiac_profile::profile_program;
    use amnesiac_sim::CoreConfig;
    use amnesiac_workloads::build_focal;
    let w = build_focal("is", Scale::Test);
    let (profile, _) = profile_program(&w.program, &CoreConfig::paper()).expect("profiles");
    c.bench_function("table6_break_even_bisection", |b| {
        b.iter(|| black_box(table6::break_even(&w.program, &profile)))
    });
}

fn bench_store_elision(c: &mut Criterion) {
    let s = suite();
    c.bench_function("extension_store_elision", |b| {
        b.iter(|| black_box(ablations::store_elision(s)))
    });
}

criterion_group! {
    name = artifacts;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig3, bench_fig4, bench_fig5, bench_table4,
              bench_table5, bench_fig6, bench_fig7, bench_fig8, bench_table6,
              bench_store_elision
}
criterion_main!(artifacts);
