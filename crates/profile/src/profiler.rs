//! The profiling pass: one observed classic run producing a
//! [`ProgramProfile`].

use std::collections::BTreeMap;
use std::rc::Rc;

use amnesiac_isa::{Instruction, Program, NUM_REGS};
use amnesiac_mem::{FastMap, LevelStats};
use amnesiac_sim::{ClassicCore, CoreConfig, Observer, RetireEvent, RunError, RunResult};

use crate::provenance::ValueNode;
use crate::tree::ProvNode;

/// Why a load site cannot be swapped for recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unswappable {
    /// The loaded value is a read-only program input (§2.2): there is
    /// nothing to recompute.
    ReadOnlyRoot,
    /// No tracked producer (uninitialised memory, or the producer chain was
    /// depth-cut before reaching a compute instruction).
    NoProducer,
    /// The immediate producer differed across dynamic instances; a single
    /// embedded slice cannot cover the site.
    UnstableRoot,
}

/// Profile of one static load site.
#[derive(Debug, Clone)]
pub struct LoadSiteProfile {
    /// Static pc of the load.
    pub pc: usize,
    /// Dynamic execution count.
    pub count: u64,
    /// Service-level distribution of this site's dynamic instances — the
    /// per-site `PrLi` of §3.1.1.
    pub levels: LevelStats,
    /// Canonical producer tree, if the site is swappable.
    pub tree: Option<ProvNode>,
    /// Set when the site cannot be recomputed.
    pub unswappable: Option<Unswappable>,
    value_matches: u64,
    last_value: Option<u64>,
}

impl LoadSiteProfile {
    fn new(pc: usize) -> Self {
        LoadSiteProfile {
            pc,
            count: 0,
            levels: LevelStats::default(),
            tree: None,
            unswappable: None,
            value_matches: 0,
            last_value: None,
        }
    }

    /// Builds a bare site profile for tests in downstream crates.
    #[doc(hidden)]
    pub fn for_tests(pc: usize, count: u64) -> Self {
        LoadSiteProfile {
            count,
            ..LoadSiteProfile::new(pc)
        }
    }

    /// Value locality in `[0, 1]`: the fraction of dynamic instances whose
    /// value matched the immediately preceding instance (history depth 1,
    /// after Lipasti et al.; the paper's Fig. 8 metric).
    pub fn value_locality(&self) -> f64 {
        if self.count <= 1 {
            0.0
        } else {
            self.value_matches as f64 / (self.count - 1) as f64
        }
    }

    /// Per-site `PrLi` probability vector over `[L1, L2, Mem]`.
    pub fn probabilities(&self) -> [f64; 3] {
        self.levels.probabilities()
    }

    fn mark_unswappable(&mut self, why: Unswappable) {
        // first reason sticks; the tree is no longer meaningful
        if self.unswappable.is_none() {
            self.unswappable = Some(why);
        }
        self.tree = None;
    }
}

/// Profile of one static store site (for the dead-store elision analysis).
#[derive(Debug, Clone, Default)]
pub struct StoreSiteProfile {
    /// Dynamic execution count.
    pub count: u64,
    /// Dynamic count of loads that read this store's values, per load pc.
    pub consumers: BTreeMap<usize, u64>,
    /// Dynamic count of stored words that were overwritten or never read.
    pub unread: u64,
}

/// Everything the amnesic compiler needs to know about one program's
/// dynamic behaviour.
#[derive(Debug, Clone)]
pub struct ProgramProfile {
    /// Per static load site.
    pub loads: BTreeMap<usize, LoadSiteProfile>,
    /// Per static store site.
    pub stores: BTreeMap<usize, StoreSiteProfile>,
    /// Global load service-level distribution (whole-program `PrLi`).
    pub all_loads: LevelStats,
    /// Dynamic instruction count of the profiling run.
    pub instructions: u64,
    /// Dynamic execution count per static pc (for amortising `REC`
    /// overheads in the compiler's energy estimates). Dense: indexed by pc,
    /// one slot per main-code instruction.
    pub pc_counts: Vec<u64>,
}

impl ProgramProfile {
    /// Dynamic execution count of the instruction at `pc` (O(1)).
    pub fn pc_count(&self, pc: usize) -> u64 {
        self.pc_counts.get(pc).copied().unwrap_or(0)
    }
}

impl ProgramProfile {
    /// Swappable sites: those with a canonical producer tree.
    pub fn swappable_sites(&self) -> impl Iterator<Item = &LoadSiteProfile> {
        self.loads.values().filter(|s| s.tree.is_some())
    }
}

#[derive(Debug, Clone)]
struct MemCell {
    node: Option<Rc<ValueNode>>,
    store_pc: usize,
    read: bool,
}

struct Tracker<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    reg_prov: Vec<Option<Rc<ValueNode>>>,
    /// Probed on every dynamic load and store; fixed-key hashing (the keys
    /// are simulated addresses) keeps the per-retirement cost down.
    mem_prov: FastMap<u64, MemCell>,
    /// Per-site profiles, dense by pc (every observed pc is main code, so
    /// `pc < code_len`): the per-dynamic-load site lookup is an index, not
    /// a map probe. [`Tracker::finish`] converts to the profile's BTreeMaps.
    loads: Vec<Option<LoadSiteProfile>>,
    stores: Vec<Option<StoreSiteProfile>>,
    all_loads: LevelStats,
    /// dense per-pc execution counters (pcs are `< code_len`)
    pc_counts: Vec<u64>,
    /// operand values of each compute pc's most recent execution, for the
    /// checkpoint-freshness analysis; dense, indexed by pc
    last_exec: Vec<Option<[u64; 3]>>,
}

impl<'p> Tracker<'p> {
    fn new(program: &'p Program) -> Self {
        Tracker {
            program,
            regs: [0; NUM_REGS],
            reg_prov: vec![None; NUM_REGS],
            mem_prov: FastMap::default(),
            loads: vec![None; program.code_len],
            stores: vec![None; program.code_len],
            all_loads: LevelStats::default(),
            pc_counts: vec![0; program.code_len],
            last_exec: vec![None; program.code_len],
        }
    }

    fn on_load(&mut self, event: &RetireEvent<'_>) {
        let addr = event.addr.expect("loads carry an address");
        let value = event.result.expect("loads produce a value");
        let level = event.level.expect("loads carry a service level");
        let pc = event.pc;

        self.all_loads.record(level);
        let regs = &self.regs;
        let site = self.loads[pc].get_or_insert_with(|| LoadSiteProfile::new(pc));
        site.count += 1;
        site.levels.record(level);
        if site.last_value == Some(value) {
            site.value_matches += 1;
        }
        site.last_value = Some(value);

        // provenance of the value the load observed
        let cell_node = match self.mem_prov.get_mut(&addr) {
            Some(cell) => {
                cell.read = true;
                let store_pc = cell.store_pc;
                let node = cell.node.clone();
                *self.stores[store_pc]
                    .get_or_insert_with(Default::default)
                    .consumers
                    .entry(pc)
                    .or_insert(0) += 1;
                match node {
                    Some(n) => Some(n),
                    None => {
                        site.mark_unswappable(Unswappable::NoProducer);
                        None
                    }
                }
            }
            None => {
                let why = if self.program.is_read_only(addr) {
                    Unswappable::ReadOnlyRoot
                } else {
                    Unswappable::NoProducer
                };
                site.mark_unswappable(why);
                None
            }
        };

        if site.unswappable.is_none() {
            if let Some(node) = &cell_node {
                match ProvNode::extract(node, regs, &self.last_exec) {
                    Some(instance) => match &mut site.tree {
                        None => site.tree = Some(instance),
                        Some(canon) => {
                            if !canon.merge(&instance) {
                                site.mark_unswappable(Unswappable::UnstableRoot);
                            }
                        }
                    },
                    None => site.mark_unswappable(Unswappable::NoProducer),
                }
            }
        }

        // register provenance of the destination
        let dst = event.inst.dst().expect("loads have a destination");
        self.reg_prov[dst.index()] = Some(ValueNode::load(
            pc,
            event.inst.clone(),
            value,
            addr,
            cell_node,
        ));
        self.regs[dst.index()] = value;
    }

    fn on_store(&mut self, event: &RetireEvent<'_>) {
        let addr = event.addr.expect("stores carry an address");
        let src_reg = event.inst.srcs()[0].expect("stores read a source register");
        let store = self.stores[event.pc].get_or_insert_with(Default::default);
        store.count += 1;
        let previous = self.mem_prov.insert(
            addr,
            MemCell {
                node: self.reg_prov[src_reg.index()].clone(),
                store_pc: event.pc,
                read: false,
            },
        );
        if let Some(prev) = previous {
            if !prev.read {
                self.stores[prev.store_pc]
                    .get_or_insert_with(Default::default)
                    .unread += 1;
            }
        }
    }

    fn on_compute(&mut self, event: &RetireEvent<'_>) {
        let value = event.result.expect("compute instructions produce a value");
        let dst = event.inst.dst().expect("compute instructions have a dst");
        let mut srcs: [Option<Rc<ValueNode>>; 3] = [None, None, None];
        for (j, reg) in event.inst.srcs().iter().enumerate() {
            if let Some(r) = reg {
                srcs[j] = self.reg_prov[r.index()].clone();
            }
        }
        let node = ValueNode::compute(event.pc, event.inst.clone(), value, srcs, event.src_values);
        self.reg_prov[dst.index()] = Some(node);
        self.regs[dst.index()] = value;
        self.last_exec[event.pc] = Some(event.src_values);
    }

    #[allow(clippy::type_complexity)]
    fn finish(
        mut self,
    ) -> (
        BTreeMap<usize, LoadSiteProfile>,
        BTreeMap<usize, StoreSiteProfile>,
        LevelStats,
        Vec<u64>,
    ) {
        // words never read before halt count as unread for their last store
        for cell in self.mem_prov.values() {
            if !cell.read {
                self.stores[cell.store_pc]
                    .get_or_insert_with(Default::default)
                    .unread += 1;
            }
        }
        let loads = self
            .loads
            .into_iter()
            .flatten()
            .map(|s| (s.pc, s))
            .collect();
        let stores = self
            .stores
            .into_iter()
            .enumerate()
            .filter_map(|(pc, s)| s.map(|s| (pc, s)))
            .collect();
        (loads, stores, self.all_loads, self.pc_counts)
    }
}

impl Observer for Tracker<'_> {
    fn on_retire(&mut self, event: &RetireEvent<'_>) {
        self.pc_counts[event.pc] += 1;
        match event.inst {
            Instruction::Load { .. } => self.on_load(event),
            Instruction::Store { .. } => self.on_store(event),
            inst if inst.is_slice_compute() => self.on_compute(event),
            _ => {} // control flow carries no value provenance
        }
    }
}

/// Profiles a classic program with one observed run.
///
/// Returns the profile and the run result (the classic baseline numbers of
/// the same run — the profiling input is also the evaluation input, as in
/// the paper's single-input methodology).
///
/// # Errors
///
/// Propagates any [`RunError`] from the underlying classic run.
pub fn profile_program(
    program: &Program,
    config: &CoreConfig,
) -> Result<(ProgramProfile, RunResult), RunError> {
    let mut tracker = Tracker::new(program);
    let result = ClassicCore::new(config.clone()).run_observed(program, &mut tracker)?;
    let (loads, stores, all_loads, pc_counts) = tracker.finish();
    Ok((
        ProgramProfile {
            loads,
            stores,
            all_loads,
            instructions: result.instructions,
            pc_counts,
        },
        result,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::{AluOp, BranchCond, ProgramBuilder, Reg};
    use amnesiac_mem::ServiceLevel;

    fn profile(p: &Program) -> ProgramProfile {
        profile_program(p, &CoreConfig::paper())
            .expect("run succeeds")
            .0
    }

    /// store computed value, load it back: the load site must get a tree
    /// rooted at the computing instruction.
    #[test]
    fn load_of_computed_value_gets_producer_tree() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(2), 20);
        let mul_pc = b.alui(AluOp::Mul, Reg(3), Reg(2), 3); // r3 = 60
        b.store(Reg(3), Reg(1), 0);
        let load_pc = b.load(Reg(4), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();

        let prof = profile(&p);
        let site = &prof.loads[&load_pc];
        assert_eq!(site.count, 1);
        assert!(site.unswappable.is_none());
        let tree = site.tree.as_ref().expect("swappable");
        assert_eq!(tree.pc, mul_pc, "root is the immediate producer P(v)");
        // producer chain continues into the li
        let op = tree.operands[0].as_ref().unwrap();
        assert_eq!(op.reg, Reg(2));
        assert!(op.always_live, "r2 still holds 20 at the load");
        assert_eq!(op.child.as_ref().unwrap().pc, 1);
    }

    #[test]
    fn load_of_read_only_input_is_unswappable() {
        let mut b = ProgramBuilder::new("t");
        let input = b.alloc_data(&[5]);
        b.mark_read_only(input, 1);
        b.li(Reg(1), input);
        let load_pc = b.load(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        assert_eq!(
            prof.loads[&load_pc].unswappable,
            Some(Unswappable::ReadOnlyRoot)
        );
    }

    #[test]
    fn load_of_unmarked_initial_memory_has_no_producer() {
        let mut b = ProgramBuilder::new("t");
        let data = b.alloc_data(&[5]);
        b.li(Reg(1), data);
        let load_pc = b.load(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        assert_eq!(
            prof.loads[&load_pc].unswappable,
            Some(Unswappable::NoProducer)
        );
    }

    /// Copy through memory: st A ← f(x); ld r ← A; st B ← r; ld r' ← B.
    /// The second load's tree must see through to f's instruction.
    #[test]
    fn provenance_sees_through_intermediate_loads() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_zeroed(1);
        let c = b.alloc_zeroed(1);
        b.li(Reg(1), a);
        b.li(Reg(2), c);
        b.li(Reg(3), 7);
        let add_pc = b.alui(AluOp::Add, Reg(4), Reg(3), 1); // f(x) = 8
        b.store(Reg(4), Reg(1), 0);
        b.load(Reg(5), Reg(1), 0);
        b.store(Reg(5), Reg(2), 0);
        let load2 = b.load(Reg(6), Reg(2), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        let site = &prof.loads[&load2];
        let tree = site.tree.as_ref().expect("swappable through the copy");
        assert_eq!(tree.pc, add_pc);
    }

    /// A loop that overwrites r2 before the load: operand no longer live.
    #[test]
    fn overwritten_operand_is_not_live() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(2), 20);
        b.alui(AluOp::Add, Reg(3), Reg(2), 1);
        b.store(Reg(3), Reg(1), 0);
        b.li(Reg(2), 999); // clobber the producer's operand register
        let load_pc = b.load(Reg(4), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        let tree = prof.loads[&load_pc].tree.as_ref().unwrap();
        let op = tree.operands[0].as_ref().unwrap();
        assert!(!op.always_live, "r2 was overwritten before the load");
    }

    /// Two stores from different producers to the same address, each read
    /// back: the root producers differ between instances → unstable.
    #[test]
    fn alternating_producers_make_site_unstable() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(5), 0); // i = 0
        b.li(Reg(6), 2); // n = 2
        let top = b.label();
        let done = b.label();
        let else_ = b.label();
        let join = b.label();
        b.bind(top).unwrap();
        b.branch(BranchCond::Geu, Reg(5), Reg(6), done);
        b.branch(BranchCond::Ne, Reg(5), Reg(5), else_); // never taken…
                                                         // iteration body: pick producer by parity
        let odd = b.label();
        let after = b.label();
        b.alui(AluOp::And, Reg(7), Reg(5), 1);
        b.li(Reg(8), 1);
        b.branch(BranchCond::Eq, Reg(7), Reg(8), odd);
        b.alui(AluOp::Add, Reg(3), Reg(5), 100); // producer A
        b.jump(after);
        b.bind(odd).unwrap();
        b.alui(AluOp::Mul, Reg(3), Reg(5), 3); // producer B
        b.bind(after).unwrap();
        b.store(Reg(3), Reg(1), 0);
        b.load(Reg(4), Reg(1), 0);
        b.alui(AluOp::Add, Reg(5), Reg(5), 1);
        b.jump(top);
        b.bind(else_).unwrap();
        b.jump(join);
        b.bind(join).unwrap();
        b.jump(top);
        b.bind(done).unwrap();
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        let site = prof
            .loads
            .values()
            .find(|s| s.count == 2)
            .expect("the in-loop load ran twice");
        assert_eq!(site.unswappable, Some(Unswappable::UnstableRoot));
    }

    #[test]
    fn value_locality_tracks_repeats() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(2), 5);
        b.store(Reg(2), Reg(1), 0);
        // three loads of the same value → locality 1.0
        let load_pc = b.load(Reg(3), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        // the three loads are distinct static sites; check the first
        let site = &prof.loads[&load_pc];
        assert_eq!(site.count, 1);
        assert_eq!(site.value_locality(), 0.0, "single instance has no history");

        // same site in a loop with a constant value
        let mut b = ProgramBuilder::new("t2");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(2), 5);
        b.store(Reg(2), Reg(1), 0);
        b.li(Reg(5), 0);
        b.li(Reg(6), 4);
        let top = b.label();
        let done = b.label();
        b.bind(top).unwrap();
        b.branch(BranchCond::Geu, Reg(5), Reg(6), done);
        let lp = b.load(Reg(3), Reg(1), 0);
        b.alui(AluOp::Add, Reg(5), Reg(5), 1);
        b.jump(top);
        b.bind(done).unwrap();
        b.halt();
        let p2 = b.finish().unwrap();
        let prof2 = profile(&p2);
        assert_eq!(prof2.loads[&lp].count, 4);
        assert_eq!(prof2.loads[&lp].value_locality(), 1.0);
    }

    #[test]
    fn store_consumer_and_unread_tracking() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_zeroed(2);
        b.li(Reg(1), a);
        b.li(Reg(2), 3);
        b.alui(AluOp::Add, Reg(3), Reg(2), 0);
        let st_read = b.store(Reg(3), Reg(1), 0);
        let st_dead = b.store(Reg(3), Reg(1), 1);
        let ld = b.load(Reg(4), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        assert_eq!(prof.stores[&st_read].consumers[&ld], 1);
        assert_eq!(prof.stores[&st_read].unread, 0);
        assert_eq!(prof.stores[&st_dead].count, 1);
        assert_eq!(prof.stores[&st_dead].unread, 1, "never read before halt");
    }

    #[test]
    fn global_load_levels_accumulate() {
        let mut b = ProgramBuilder::new("t");
        let cell = b.alloc_zeroed(1);
        b.li(Reg(1), cell);
        b.li(Reg(2), 1);
        b.store(Reg(2), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let prof = profile(&p);
        assert_eq!(prof.all_loads.total(), 2);
        // store warmed the line: both loads hit L1
        assert_eq!(prof.all_loads.by_level[ServiceLevel::L1.index()], 2);
        assert!(prof.instructions > 0);
    }
}
