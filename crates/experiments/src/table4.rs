//! Table 4: dynamic instruction mix and energy breakdown under amnesic
//! execution (Compiler policy — the maximum possible number of
//! recomputations, as in the paper).

use crate::pipeline::{EvalSuite, PolicyOutcome};
use crate::report::Table;

/// Renders the paper's Table 4.
pub fn render(suite: &EvalSuite) -> String {
    let mut t = Table::new(&[
        "bench",
        "Δinst %",
        "Δload %",
        "cl Load%",
        "cl Store%",
        "cl Nonmem%",
        "am Load%",
        "am Store%",
        "am Nonmem%",
        "am Hist%",
    ]);
    for bench in &suite.benches {
        let amnesic = bench.run(PolicyOutcome::Compiler);
        let inst_increase =
            100.0 * (amnesic.run.instructions as f64 / bench.classic.instructions as f64 - 1.0);
        let load_decrease =
            100.0 * (1.0 - amnesic.run.loads as f64 / bench.classic.loads.max(1) as f64);
        let cl = bench.classic.account.breakdown();
        let am = amnesic.run.account.breakdown();
        t.row(vec![
            bench.name.to_string(),
            format!("{inst_increase:+.2}"),
            format!("{load_decrease:+.2}"),
            format!("{:.2}", cl.load_pct),
            format!("{:.2}", cl.store_pct),
            format!("{:.2}", cl.non_mem_pct),
            format!("{:.2}", am.load_pct),
            format!("{:.2}", am.store_pct),
            format!("{:.2}", am.non_mem_pct),
            format!("{:.3}", am.hist_read_pct),
        ]);
    }
    format!(
        "Table 4: Dynamic instruction mix and energy breakdown under amnesic \
         execution (Compiler policy)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BenchEval;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn breakdown_row_renders() {
        let suite = EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("is", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        let text = render(&suite);
        assert!(text.contains("Δinst"));
        assert!(text.contains("is"));
    }
}
