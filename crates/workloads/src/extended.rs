//! The remaining 17 benchmarks of the paper's Table 2 — together with the
//! focal 11 and the 5 controls, the full 33-benchmark deployment.
//!
//! The paper reports that these "did not benefit much from recomputation
//! (only 4 provided more than 5% EDP gain), because they did not have many
//! energy-hungry loads and/or recomputation degraded temporal locality",
//! and that `mg` *degraded* by 1.37% under the Compiler policy. Each
//! kernel here is a compact implementation of the benchmark's
//! characteristic algorithm, shaped to land in the paper's band:
//! mostly non-responders, a few mild responders (`lbm`, `soplex`,
//! `GemsFDTD`, `nw`), and `mg` slightly negative.

use amnesiac_isa::{AluOp, BranchCond, CvtKind, FpOp, FpUnOp, Program, ProgramBuilder, Reg};

use crate::util::{loop_footer, loop_header, random_indices};
use crate::Scale;

fn size(scale: Scale, test: u64, paper: u64) -> u64 {
    match scale {
        Scale::Test => test,
        Scale::Paper => paper,
    }
}

/// SPEC `perlbench`: string hashing into a hot bucket table.
pub fn perlbench(scale: Scale) -> Program {
    let n = size(scale, 128, 40_000);
    const TABLE: u64 = 128;
    let mut b = ProgramBuilder::new("perlbench");
    let text = b.alloc_data(&random_indices(101, n as usize, 256));
    b.mark_read_only(text, n);
    let table = b.alloc_zeroed(TABLE);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_text, r_tab, r_i, r_lim, r_addr, r_h, r_acc, t) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
    );
    b.li(r_text, text);
    b.li(r_tab, table);
    b.li(r_h, 5381);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_text, r_i);
    b.load(t, r_addr, 0); // read-only input byte
    b.alui(AluOp::Mul, r_h, r_h, 33);
    b.alu(AluOp::Xor, r_h, r_h, t);
    b.alui(AluOp::And, t, r_h, TABLE - 1);
    b.alu(AluOp::Add, r_addr, r_tab, t);
    b.load(t, r_addr, 0); // hot table: rejected by the budget rule
    b.alui(AluOp::Add, t, t, 1);
    b.store(t, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_acc, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, TABLE);
    b.alu(AluOp::Add, r_addr, r_tab, r_i);
    b.load(t, r_addr, 0);
    b.alu(AluOp::Add, r_acc, r_acc, t);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("perlbench builds")
}

/// SPEC `gobmk`: board-position evaluation over a read-only 19×19 board.
pub fn gobmk(scale: Scale) -> Program {
    let games = size(scale, 4, 1_200);
    const W: u64 = 19;
    const CELLS: u64 = W * W;
    let mut b = ProgramBuilder::new("gobmk");
    let board = b.alloc_data(&random_indices(102, CELLS as usize, 3));
    b.mark_read_only(board, CELLS);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_board, r_g, r_glim, r_i, r_lim, r_addr, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_board, board);
    b.li(r_acc, 0);
    let (gtop, gdone) = loop_header(&mut b, r_g, r_glim, games);
    {
        // evaluate interior cells: liberties-style neighbour sums
        let (top, done) = loop_header(&mut b, r_i, r_lim, CELLS - W - 1);
        b.alu(AluOp::Add, r_addr, r_board, r_i);
        b.load(t1, r_addr, 0);
        b.load(t2, r_addr, 1);
        b.alu(AluOp::Add, t1, t1, t2);
        b.load(t2, r_addr, W as i64);
        b.alu(AluOp::Add, t1, t1, t2);
        b.alu(AluOp::Mul, t1, t1, r_g);
        b.alu(AluOp::Add, r_acc, r_acc, t1);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_g, gtop, gdone);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("gobmk builds")
}

/// SPEC `calculix`: Gauss-Seidel relaxation of a small dense system.
pub fn calculix(scale: Scale) -> Program {
    let sweeps = size(scale, 3, 400);
    const N: u64 = 48;
    let mut b = ProgramBuilder::new("calculix");
    let x = b.alloc_data(&vec![1.0f64.to_bits(); N as usize]);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_x, r_s, r_slim, r_i, r_lim, r_addr, r_w, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(10),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_x, x);
    b.lfi(r_w, 0.49);
    let (stop, sdone) = loop_header(&mut b, r_s, r_slim, sweeps);
    {
        let (top, done) = loop_header(&mut b, r_i, r_lim, N - 1);
        b.alu(AluOp::Add, r_addr, r_x, r_i);
        b.load(t1, r_addr, 0); // in-place mixed-age reads: unswappable
        b.load(t2, r_addr, 1);
        b.fpu(FpOp::Add, t1, t1, t2);
        b.fpu(FpOp::Mul, t1, t1, r_w);
        b.store(t1, r_addr, 0);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_s, stop, sdone);
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, N);
    b.alu(AluOp::Add, r_addr, r_x, r_i);
    b.load(t1, r_addr, 0);
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("calculix builds")
}

/// SPEC `GemsFDTD`: field fill + strided far-field gather — one of the
/// paper's mild (<10%) responders.
pub fn gemsfdtd(scale: Scale) -> Program {
    let n = size(scale, 128, 40_000);
    let mut b = ProgramBuilder::new("GemsFDTD");
    let field = b.alloc_zeroed(n);
    let params = b.alloc_f64(&[0.125]);
    b.mark_read_only(params, 1);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_field, r_params, r_i, r_lim, r_addr, r_c, r_cur, r_acc) = (
        Reg(1),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(10),
        Reg(11),
        Reg(7),
    );
    let (t1, t2) = (Reg(40), Reg(41));
    b.li(r_field, field);
    b.li(r_params, params);
    b.lfi(r_cur, 0.75);
    b.lfi(r_acc, 0.0);
    // field update: coefficient per 32-cell wavefront window
    b.load(r_c, r_params, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alui(AluOp::Shr, t1, r_i, 5);
    b.cvt(CvtKind::I2F, t2, t1);
    b.fma(t2, t2, r_cur, r_c); // producer root
    b.alu(AluOp::Add, r_addr, r_field, r_i);
    b.store(t2, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);
    b.lfi(r_c, 0.0); // the coefficient register carries the next timestep
                     // far-field gathers: two strided reload passes of the updated field
    for _ in 0..2 {
        b.li(r_i, 0);
        b.li(r_lim, n);
        let top = b.label();
        let done = b.label();
        b.bind(top).expect("fresh");
        b.branch(BranchCond::Geu, r_i, r_lim, done);
        b.alu(AluOp::Add, r_addr, r_field, r_i);
        b.load(t2, r_addr, 0); // the mild swappable site
        b.fpu(FpOp::Add, r_acc, r_acc, t2);
        b.alui(AluOp::Add, r_i, r_i, 13);
        b.jump(top);
        b.bind(done).expect("fresh");
    }
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("GemsFDTD builds")
}

/// SPEC `libquantum`: controlled-NOT sweeps over an amplitude register.
pub fn libquantum(scale: Scale) -> Program {
    let gates = size(scale, 3, 40);
    let n = size(scale, 64, 4_096);
    let mut b = ProgramBuilder::new("libquantum");
    let amps = b.alloc_data(&vec![1.0f64.to_bits(); n as usize]);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_amp, r_g, r_glim, r_i, r_lim, r_addr, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_amp, amps);
    let (gtop, gdone) = loop_header(&mut b, r_g, r_glim, gates);
    {
        let (top, done) = loop_header(&mut b, r_i, r_lim, n / 2);
        // swap-and-phase: amplitudes exchange across the control bit
        b.alu(AluOp::Add, r_addr, r_amp, r_i);
        b.load(t1, r_addr, 0); // mixed-age: unswappable
        b.lfi(t2, -1.0);
        b.fpu(FpOp::Mul, t1, t1, t2);
        b.store(t1, r_addr, (n / 2) as i64);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_g, gtop, gdone);
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_amp, r_i);
    b.load(t1, r_addr, 0);
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("libquantum builds")
}

/// SPEC `soplex`: simplex column pricing — a mild responder.
pub fn soplex(scale: Scale) -> Program {
    let n = size(scale, 128, 24_000);
    let mut b = ProgramBuilder::new("soplex");
    let prices = b.alloc_zeroed(n);
    let params = b.alloc_f64(&[1.75]);
    b.mark_read_only(params, 1);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_p, r_params, r_i, r_lim, r_addr, r_pi, r_best, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(10),
        Reg(6),
        Reg(40),
        Reg(41),
    );
    b.li(r_p, prices);
    b.li(r_params, params);
    // pricing pass: reduced cost per column from the dual value π
    b.li(r_addr, 0);
    b.load(r_pi, r_params, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.cvt(CvtKind::I2F, t1, r_i);
    b.fpu(FpOp::Mul, t2, t1, r_pi);
    b.fpu(FpOp::Sub, t2, t2, t1);
    b.alu(AluOp::Add, r_addr, r_p, r_i);
    b.store(t2, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);
    b.lfi(r_pi, 0.0); // the dual is updated for the next round: Hist input
                      // ratio-test passes: two strided scans for the entering column
    b.lfi(r_best, 1.0e300);
    for _ in 0..2 {
        b.li(r_i, 0);
        b.li(r_lim, n);
        let top = b.label();
        let done = b.label();
        b.bind(top).expect("fresh");
        b.branch(BranchCond::Geu, r_i, r_lim, done);
        b.alu(AluOp::Add, r_addr, r_p, r_i);
        b.load(t1, r_addr, 0); // the mildly-profitable swappable site
        b.fpu(FpOp::Min, r_best, r_best, t1);
        b.alui(AluOp::Add, r_i, r_i, 11);
        b.jump(top);
        b.bind(done).expect("fresh");
    }
    b.li(r_addr, out);
    b.store(r_best, r_addr, 0);
    b.halt();
    b.finish().expect("soplex builds")
}

/// SPEC `lbm`: lattice-Boltzmann streaming — a mild responder.
pub fn lbm(scale: Scale) -> Program {
    let n = size(scale, 128, 48_000);
    let mut b = ProgramBuilder::new("lbm");
    let cells = b.alloc_zeroed(n);
    let omega = b.alloc_f64(&[0.6]);
    b.mark_read_only(omega, 1);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_cells, r_omega, r_i, r_lim, r_addr, r_w, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(10),
        Reg(6),
        Reg(40),
        Reg(41),
    );
    b.li(r_cells, cells);
    b.li(r_omega, omega);
    b.load(r_w, r_omega, 0);
    // collide: equilibrium distribution per cell (pure function of index)
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alui(AluOp::And, t1, r_i, 511);
    b.cvt(CvtKind::I2F, t2, t1);
    b.fpu(FpOp::Mul, t2, t2, r_w);
    b.fma(t2, t2, t2, r_w);
    b.alu(AluOp::Add, r_addr, r_cells, r_i);
    b.store(t2, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);
    // ω stays live across the streaming pass (its producer is a read-only
    // load, so keeping the register alive avoids any Hist/REC traffic)
    // stream: strided gather of post-collision populations
    b.lfi(r_acc, 0.0);
    b.li(r_i, 0);
    b.li(r_lim, n);
    let top = b.label();
    let done = b.label();
    b.bind(top).expect("fresh");
    b.branch(BranchCond::Geu, r_i, r_lim, done);
    b.alu(AluOp::Add, r_addr, r_cells, r_i);
    b.load(t1, r_addr, 0); // the swappable streaming reload
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    b.alui(AluOp::Add, r_i, r_i, 5);
    b.jump(top);
    b.bind(done).expect("fresh");
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("lbm builds")
}

/// SPEC `omnetpp`: discrete-event queue churn.
pub fn omnetpp(scale: Scale) -> Program {
    let events = size(scale, 128, 30_000);
    const Q: u64 = 256;
    let mut b = ProgramBuilder::new("omnetpp");
    let queue = b.alloc_zeroed(Q);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_q, r_i, r_lim, r_addr, r_acc, t1, t2) =
        (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(40), Reg(41));
    b.li(r_q, queue);
    b.li(r_acc, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, events);
    // pop-push: event timestamps chain through the queue (mixed producers)
    b.alui(AluOp::Mul, t1, r_i, 2654435761);
    b.alui(AluOp::Shr, t1, t1, 9);
    b.alui(AluOp::And, t1, t1, Q - 1);
    b.alu(AluOp::Add, r_addr, r_q, t1);
    b.load(t2, r_addr, 0); // hot queue slot: rejected / unstable
    b.alu(AluOp::Add, t2, t2, r_i);
    b.store(t2, r_addr, 0);
    b.alu(AluOp::Add, r_acc, r_acc, t2);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("omnetpp builds")
}

/// NAS `mg`: multigrid smoothing — the paper's slightly-degrading case
/// (−1.37% EDP under Compiler).
pub fn mg(scale: Scale) -> Program {
    let sweeps = size(scale, 2, 10);
    let n = size(scale, 2_048, 2_048);
    let mut b = ProgramBuilder::new("mg");
    let grid = b.alloc_zeroed(n);
    let residual = b.alloc_data(&random_indices(
        104,
        size(scale, 256, 16_384) as usize,
        1 << 16,
    ));
    let res_len = size(scale, 256, 16_384);
    b.mark_read_only(residual, res_len);
    let params = b.alloc_f64(&[0.3]);
    b.mark_read_only(params, 1);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_grid, r_res, r_params, r_t, r_lim, r_addr, r_c, r_acc) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(10),
        Reg(7),
    );
    let (t1, t2) = (Reg(40), Reg(41));
    b.li(r_grid, grid);
    b.li(r_res, residual);
    b.li(r_params, params);
    b.lfi(r_acc, 0.0);
    let total = n * sweeps;
    let r_zero = Reg(12);
    b.li(r_zero, 0);
    let (top, done) = loop_header(&mut b, r_t, r_lim, total);
    // smoother coefficient, recomputed at each 128-cell window head
    {
        let same = b.label();
        b.alui(AluOp::And, t1, r_t, 127);
        b.branch(BranchCond::Ne, t1, r_zero, same);
        b.load(r_c, r_params, 0);
        b.alui(AluOp::Shr, t1, r_t, 7);
        b.cvt(CvtKind::I2F, t2, t1);
        b.fma(t2, t2, t2, r_c); // producer root
        b.bind(same).expect("fresh");
    }
    b.alui(AluOp::And, t1, r_t, n - 1);
    b.alu(AluOp::Add, r_addr, r_grid, t1);
    b.store(t2, r_addr, 0);
    // residual gather (read-only, strided — inflates the global model)
    b.alui(AluOp::Mul, t1, r_t, 8);
    b.alui(AluOp::And, t1, t1, res_len - 1);
    b.alu(AluOp::Add, t1, t1, r_res);
    b.load(r_c, t1, 0); // clobbers the coefficient register
                        // every 4th cell, reload the (L1-resident) coefficient: the Compiler
                        // policy keeps firing for it and loses slightly — the paper's −1.37%
    {
        let skip = b.label();
        b.alui(AluOp::And, t1, r_t, 3);
        b.branch(BranchCond::Ne, t1, r_zero, skip);
        b.load(t1, r_addr, 0);
        b.alu(AluOp::Add, r_acc, r_acc, t1);
        b.bind(skip).expect("fresh");
    }
    b.alu(AluOp::Add, r_acc, r_acc, r_c);
    loop_footer(&mut b, r_t, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("mg builds")
}

/// NAS `ft`: butterfly passes of a radix-2 transform.
pub fn ft(scale: Scale) -> Program {
    let passes = size(scale, 3, 12);
    let n = size(scale, 128, 8_192);
    let mut b = ProgramBuilder::new("ft");
    let re = b.alloc_data(&vec![1.0f64.to_bits(); n as usize]);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_re, r_p, r_plim, r_i, r_lim, r_addr, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_re, re);
    let (ptop, pdone) = loop_header(&mut b, r_p, r_plim, passes);
    {
        let (top, done) = loop_header(&mut b, r_i, r_lim, n / 2);
        b.alu(AluOp::Add, r_addr, r_re, r_i);
        b.load(t1, r_addr, 0); // butterfly inputs: mixed-age, unswappable
        b.load(t2, r_addr, (n / 2) as i64);
        b.fpu(FpOp::Add, t1, t1, t2);
        b.store(t1, r_addr, 0);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_p, ptop, pdone);
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_re, r_i);
    b.load(t1, r_addr, 0);
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("ft builds")
}

/// PARSEC `x264`: sum-of-absolute-differences motion search over
/// read-only frames.
pub fn x264(scale: Scale) -> Program {
    let blocks = size(scale, 16, 4_000);
    const BLK: u64 = 16;
    let mut b = ProgramBuilder::new("x264");
    let frame_len = size(scale, 512, 16_384);
    let frame = b.alloc_data(&random_indices(105, frame_len as usize, 256));
    b.mark_read_only(frame, frame_len);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_frame, r_blk, r_blim, r_i, r_lim, r_addr, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_frame, frame);
    b.li(r_acc, 0);
    let (btop, bdone) = loop_header(&mut b, r_blk, r_blim, blocks);
    {
        let (top, done) = loop_header(&mut b, r_i, r_lim, BLK);
        b.alui(AluOp::Mul, t1, r_blk, 37);
        b.alu(AluOp::Add, t1, t1, r_i);
        b.alui(AluOp::And, t1, t1, frame_len - 1);
        b.alu(AluOp::Add, r_addr, r_frame, t1);
        b.load(t1, r_addr, 0); // read-only pixels: unswappable
        b.alu(AluOp::Add, r_addr, r_frame, r_i);
        b.load(t2, r_addr, 0);
        b.alu(AluOp::Sub, t1, t1, t2);
        b.alu(AluOp::Add, r_acc, r_acc, t1);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_blk, btop, bdone);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("x264 builds")
}

/// PARSEC `dedup`: rolling-hash chunking with a dedup table.
pub fn dedup(scale: Scale) -> Program {
    let n = size(scale, 128, 30_000);
    const TABLE: u64 = 512;
    let mut b = ProgramBuilder::new("dedup");
    let stream = b.alloc_data(&random_indices(106, n as usize, 256));
    b.mark_read_only(stream, n);
    let table = b.alloc_zeroed(TABLE);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_stream, r_tab, r_i, r_lim, r_addr, r_h, r_acc, t) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(40),
    );
    b.li(r_stream, stream);
    b.li(r_tab, table);
    b.li(r_h, 0);
    b.li(r_acc, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_stream, r_i);
    b.load(t, r_addr, 0);
    b.alui(AluOp::Mul, r_h, r_h, 257);
    b.alu(AluOp::Add, r_h, r_h, t);
    b.alui(AluOp::And, t, r_h, TABLE - 1);
    b.alu(AluOp::Add, r_addr, r_tab, t);
    b.load(t, r_addr, 0); // duplicate check on a hot table
    b.alui(AluOp::Add, t, t, 1);
    b.store(t, r_addr, 0);
    b.alu(AluOp::Add, r_acc, r_acc, t);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("dedup builds")
}

/// PARSEC `fluidanimate`: particle-grid force accumulation.
pub fn fluidanimate(scale: Scale) -> Program {
    let steps = size(scale, 2, 12);
    let n = size(scale, 128, 3_000);
    let mut b = ProgramBuilder::new("fluidanimate");
    let pos = b.alloc_data(&vec![0.5f64.to_bits(); n as usize]);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_pos, r_s, r_slim, r_i, r_lim, r_addr, r_dt, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(10),
        Reg(7),
        Reg(40),
        Reg(41),
    );
    b.li(r_pos, pos);
    b.lfi(r_dt, 0.01);
    let (stop, sdone) = loop_header(&mut b, r_s, r_slim, steps);
    {
        let (top, done) = loop_header(&mut b, r_i, r_lim, n - 1);
        b.alu(AluOp::Add, r_addr, r_pos, r_i);
        b.load(t1, r_addr, 0); // positions: mixed-age, unswappable
        b.load(t2, r_addr, 1);
        b.fpu(FpOp::Sub, t2, t2, t1);
        b.fma(t1, t2, r_dt, t1);
        b.store(t1, r_addr, 0);
        loop_footer(&mut b, r_i, top, done);
    }
    loop_footer(&mut b, r_s, stop, sdone);
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alu(AluOp::Add, r_addr, r_pos, r_i);
    b.load(t1, r_addr, 0);
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("fluidanimate builds")
}

/// PARSEC `streamcluster`: distances to a hot set of medians.
pub fn streamcluster(scale: Scale) -> Program {
    let n = size(scale, 128, 24_000);
    const K: u64 = 16;
    let mut b = ProgramBuilder::new("streamcluster");
    let medians: Vec<f64> = (0..K).map(|k| k as f64 * 0.7).collect();
    let med = b.alloc_f64(&medians);
    b.mark_read_only(med, K);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_med, r_i, r_lim, r_k, r_klim, r_addr, r_if, r_best, r_acc, t1) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
        Reg(40),
    );
    b.li(r_med, med);
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.cvt(CvtKind::I2F, r_if, r_i);
    b.lfi(r_best, 1.0e300);
    {
        let (ktop, kdone) = loop_header(&mut b, r_k, r_klim, K);
        b.alu(AluOp::Add, r_addr, r_med, r_k);
        b.load(t1, r_addr, 0); // read-only medians: unswappable
        b.fpu(FpOp::Sub, t1, r_if, t1);
        b.fpu(FpOp::Mul, t1, t1, t1);
        b.fpu(FpOp::Min, r_best, r_best, t1);
        loop_footer(&mut b, r_k, ktop, kdone);
    }
    b.fpu(FpOp::Add, r_acc, r_acc, r_best);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("streamcluster builds")
}

/// PARSEC `bodytrack`: per-particle likelihood (compute-bound exp chains).
pub fn bodytrack(scale: Scale) -> Program {
    let n = size(scale, 64, 12_000);
    let mut b = ProgramBuilder::new("bodytrack");
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_i, r_lim, r_addr, r_acc, t1, t2) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(40), Reg(41));
    b.lfi(r_acc, 0.0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.cvt(CvtKind::I2F, t1, r_i);
    b.lfi(t2, -0.001);
    b.fpu(FpOp::Mul, t1, t1, t2);
    b.fpu_un(FpUnOp::Exp, t1, t1);
    b.fpu_un(FpUnOp::Sqrt, t1, t1);
    b.fpu(FpOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("bodytrack builds")
}

/// Rodinia `nw` (Needleman-Wunsch): DP row fill + strided traceback — a
/// mild responder.
pub fn nw(scale: Scale) -> Program {
    let n = size(scale, 256, 30_000);
    let mut b = ProgramBuilder::new("nw");
    let gap = b.alloc_f64(&[2.0]);
    b.mark_read_only(gap, 1);
    let scores = b.alloc_zeroed(n);
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_gap, r_scores, r_i, r_lim, r_addr, r_g, r_acc, t1, t2) = (
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(10),
        Reg(6),
        Reg(40),
        Reg(41),
    );
    b.li(r_gap, gap);
    b.li(r_scores, scores);
    b.load(r_g, r_gap, 0);
    b.lfi(r_acc, 0.0);
    // fill: score(i) = float(i & 63) − gap  (a banded match/gap recurrence)
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alui(AluOp::And, t1, r_i, 63);
    b.cvt(CvtKind::I2F, t2, t1);
    b.fpu(FpOp::Sub, t2, t2, r_g); // producer root
    b.alu(AluOp::Add, r_addr, r_scores, r_i);
    b.store(t2, r_addr, 0);
    loop_footer(&mut b, r_i, top, done);
    b.lfi(r_g, 9.0); // gap register reused for the north term: Hist input
                     // traceback: two strided reload passes of the DP row
    for _ in 0..2 {
        b.li(r_i, 0);
        b.li(r_lim, n);
        let top = b.label();
        let done = b.label();
        b.bind(top).expect("fresh");
        b.branch(BranchCond::Geu, r_i, r_lim, done);
        b.alu(AluOp::Add, r_addr, r_scores, r_i);
        b.load(t2, r_addr, 0); // the swappable traceback reload
        b.fpu(FpOp::Add, r_acc, r_acc, t2);
        b.alui(AluOp::Add, r_i, r_i, 15);
        b.jump(top);
        b.bind(done).expect("fresh");
    }
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("nw builds")
}

/// Rodinia `particlefilter`: in-register LCG resampling weights.
pub fn particlefilter(scale: Scale) -> Program {
    let n = size(scale, 128, 24_000);
    let mut b = ProgramBuilder::new("particlefilter");
    let out = b.alloc_zeroed(1);
    b.mark_output(out, 1);
    let (r_i, r_lim, r_addr, r_state, r_acc, t1) =
        (Reg(1), Reg(2), Reg(3), Reg(10), Reg(4), Reg(40));
    b.li(r_state, 12345);
    b.li(r_acc, 0);
    let (top, done) = loop_header(&mut b, r_i, r_lim, n);
    b.alui(AluOp::Mul, r_state, r_state, 1103515245);
    b.alui(AluOp::Add, r_state, r_state, 12345);
    b.alui(AluOp::Shr, t1, r_state, 16);
    b.alui(AluOp::And, t1, t1, 1023);
    b.alu(AluOp::Add, r_acc, r_acc, t1);
    loop_footer(&mut b, r_i, top, done);
    b.li(r_addr, out);
    b.store(r_acc, r_addr, 0);
    b.halt();
    b.finish().expect("particlefilter builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_sim::{ClassicCore, CoreConfig};

    #[test]
    fn all_extended_kernels_build_and_run_at_test_scale() {
        let programs = [
            perlbench(Scale::Test),
            gobmk(Scale::Test),
            calculix(Scale::Test),
            gemsfdtd(Scale::Test),
            libquantum(Scale::Test),
            soplex(Scale::Test),
            lbm(Scale::Test),
            omnetpp(Scale::Test),
            mg(Scale::Test),
            ft(Scale::Test),
            x264(Scale::Test),
            dedup(Scale::Test),
            fluidanimate(Scale::Test),
            streamcluster(Scale::Test),
            bodytrack(Scale::Test),
            nw(Scale::Test),
            particlefilter(Scale::Test),
        ];
        for p in &programs {
            let r = ClassicCore::new(CoreConfig::paper())
                .run(p)
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.name));
            assert_eq!(r.final_memory.len(), 1, "{}", p.name);
        }
    }

    #[test]
    fn perlbench_counts_every_character() {
        let p = perlbench(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        // the final sweep sums all bucket counts = n characters hashed
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(r.final_memory[&addr], 128);
    }

    #[test]
    fn soplex_min_price_matches_reference() {
        let p = soplex(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let price = |i: u64| {
            let v = i as f64;
            v * 1.75 - v
        };
        let mut expected = f64::INFINITY;
        for _ in 0..2 {
            let mut i = 0u64;
            while i < 128 {
                expected = expected.min(price(i));
                i += 11;
            }
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&addr]), expected);
    }

    #[test]
    fn lbm_stream_sum_matches_reference() {
        let p = lbm(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let w = 0.6f64;
        let pop = |i: u64| {
            let x = ((i & 511) as f64) * w;
            x.mul_add(x, w)
        };
        let mut expected = 0.0f64;
        let mut i = 0u64;
        while i < 128 {
            expected += pop(i);
            i += 5;
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&addr]), expected);
    }

    #[test]
    fn nw_traceback_matches_reference() {
        let p = nw(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let score = |i: u64| ((i & 63) as f64) - 2.0;
        let mut expected = 0.0f64;
        for _ in 0..2 {
            let mut i = 0u64;
            while i < 256 {
                expected += score(i);
                i += 15;
            }
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&addr]), expected);
    }

    #[test]
    fn gemsfdtd_gather_matches_reference() {
        let p = gemsfdtd(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let field = |i: u64| ((i >> 5) as f64).mul_add(0.75, 0.125);
        let mut expected = 0.0f64;
        for _ in 0..2 {
            let mut i = 0u64;
            while i < 128 {
                expected += field(i);
                i += 13;
            }
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(f64::from_bits(r.final_memory[&addr]), expected);
    }

    #[test]
    fn mg_checksum_matches_reference() {
        let p = mg(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let n = 2_048u64;
        let sweeps = 2u64;
        let res_len = 256u64;
        let residuals = crate::util::random_indices(104, res_len as usize, 1 << 16);
        // the kernel's checksum uses *integer* adds over the accumulator's
        // bit pattern (a bit-mangling checksum): mirror it exactly
        let mut acc_bits = 0.0f64.to_bits();
        let mut coefficient_bits = 0u64;
        for t in 0..n * sweeps {
            if t % 128 == 0 {
                let w = (t >> 7) as f64;
                coefficient_bits = w.mul_add(w, 0.3).to_bits();
            }
            let res_idx = ((t * 8) & (res_len - 1)) as usize;
            if t % 4 == 0 {
                acc_bits = acc_bits.wrapping_add(coefficient_bits);
            }
            acc_bits = acc_bits.wrapping_add(residuals[res_idx]);
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(r.final_memory[&addr], acc_bits);
    }

    #[test]
    fn particlefilter_matches_lcg_reference() {
        let p = particlefilter(Scale::Test);
        let r = ClassicCore::new(CoreConfig::paper()).run(&p).unwrap();
        let mut state: u64 = 12345;
        let mut acc: u64 = 0;
        for _ in 0..128 {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            acc = acc.wrapping_add((state >> 16) & 1023);
        }
        let addr = *r.final_memory.keys().next().unwrap();
        assert_eq!(r.final_memory[&addr], acc);
    }
}
