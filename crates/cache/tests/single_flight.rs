//! Satellite: single-flight deduplication under real concurrency.
//!
//! Eight threads request the same `bench:mcf` compile through one shared
//! cache, released together by a barrier. The pipeline must run exactly
//! once (counter hook on the compute closure) and every thread must
//! receive the identical artifact.

use amnesiac_cache::CompileCache;
use amnesiac_compiler::{compile, CompileOptions};
use amnesiac_profile::profile_program;
use amnesiac_sim::CoreConfig;
use amnesiac_workloads::{build_focal, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;

#[test]
fn eight_threads_one_compilation() {
    let program = build_focal("mcf", Scale::Test).program;
    let options = CompileOptions::default();
    let (profile, _) = profile_program(&program, &CoreConfig::paper()).expect("profile");

    let cache = Arc::new(CompileCache::in_memory());
    let pipeline_runs = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let runs = Arc::clone(&pipeline_runs);
            let barrier = Arc::clone(&barrier);
            let program = program.clone();
            let profile = profile.clone();
            let options = options.clone();
            std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_compile_arc(&program, &options, &mut || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        compile(&program, &profile, &options)
                    })
                    .expect("cached compile")
            })
        })
        .collect();

    let artifacts: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread"))
        .collect();

    assert_eq!(
        pipeline_runs.load(Ordering::SeqCst),
        1,
        "exactly one pipeline execution for {THREADS} concurrent requests"
    );
    let first = &artifacts[0];
    for artifact in &artifacts[1..] {
        assert!(
            Arc::ptr_eq(first, artifact),
            "all threads must share one artifact allocation"
        );
    }
    // the artifact is the real thing, not a placeholder
    let (expected_program, expected_report) =
        compile(&program, &profile, &options).expect("reference compile");
    assert_eq!(first.program, expected_program);
    assert_eq!(first.report, expected_report);

    let stats = cache.stats();
    assert_eq!(stats.misses.load(Ordering::SeqCst), 1);
    assert_eq!(
        stats.hits.load(Ordering::SeqCst) + stats.inflight_waits.load(Ordering::SeqCst),
        (THREADS - 1) as u64,
        "everyone but the leader either hit or waited in-flight"
    );
}

#[test]
fn warm_restart_serves_from_disk_without_recompiling() {
    // two cache instances over one directory = a process restart
    let dir = std::env::temp_dir().join(format!("amnesiac-cache-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let program = build_focal("mcf", Scale::Test).program;
    let options = CompileOptions::default();
    let (profile, _) = profile_program(&program, &CoreConfig::paper()).expect("profile");

    let cold = CompileCache::persistent(&dir).expect("cold cache");
    let mut cold_runs = 0;
    let cold_artifact = cold
        .get_or_compile_arc(&program, &options, &mut || {
            cold_runs += 1;
            compile(&program, &profile, &options)
        })
        .expect("cold compile");
    assert_eq!(cold_runs, 1);
    assert_eq!(cold.stats().disk_loads.load(Ordering::SeqCst), 0);

    let warm = CompileCache::persistent(&dir).expect("warm cache");
    let mut warm_runs = 0;
    let warm_artifact = warm
        .get_or_compile_arc(&program, &options, &mut || {
            warm_runs += 1;
            compile(&program, &profile, &options)
        })
        .expect("warm load");
    assert_eq!(warm_runs, 0, "warm restart must not recompile");
    assert_eq!(warm.stats().disk_loads.load(Ordering::SeqCst), 1);
    assert_eq!(warm.stats().misses.load(Ordering::SeqCst), 0);
    assert_eq!(warm.stats().hits.load(Ordering::SeqCst), 1);
    assert_eq!(cold_artifact.program, warm_artifact.program);
    assert_eq!(cold_artifact.report, warm_artifact.report);

    let _ = std::fs::remove_dir_all(&dir);
}
