//! Fig. 8: value locality of the loads swapped for recomputation by the
//! Compiler policy, and the memoization-orthogonality argument of §5.6.

use crate::pipeline::EvalSuite;
use crate::report::{bucketize, histogram, Table};

/// Renders per-benchmark locality histograms over the swapped load sites
/// (weighted by dynamic instance count, as the paper plots "% loads").
pub fn render(suite: &EvalSuite) -> String {
    let mut out = String::new();
    for bench in &suite.benches {
        let selected = bench.prob_report.selected_load_pcs();
        let values: Vec<(f64, u64)> = bench
            .profile
            .loads
            .values()
            .filter(|site| selected.contains(&site.pc))
            .map(|site| (100.0 * site.value_locality(), site.count))
            .collect();
        let bins = bucketize(&values, 10.0, 100.0);
        out.push_str(&histogram(
            &format!(
                "Fig. 8 ({}): value locality of swapped loads (% of dynamic loads)",
                bench.name
            ),
            &bins,
        ));
        out.push('\n');
    }
    out.push_str(
        "Loads with high locality would also be served by memoization / load-value\n\
         prediction; low-locality benchmarks show recomputation is orthogonal (§5.6).\n\n",
    );
    out.push_str(&memoization_comparison(suite));
    out
}

/// §5.6's duality, made quantitative: estimated per-swapped-load energy
/// under classic execution, under memoization (a value table modelled at
/// L1-D lookup cost, hitting at the measured value-locality rate), and
/// under recomputation (the slice's fire cost).
pub fn memoization_comparison(suite: &EvalSuite) -> String {
    let lookup_nj = suite.energy.hist_read_nj; // a table lookup ≈ L1-D
    let mut t = Table::new(&[
        "bench",
        "locality %",
        "E/load classic",
        "E/load memoized",
        "E/load recomputed",
        "winner",
    ]);
    for bench in &suite.benches {
        let selected = bench.prob_report.selected_load_pcs();
        let mut weight = 0u64;
        let mut locality = 0.0f64;
        let mut classic_nj = 0.0f64;
        for site in bench.profile.loads.values() {
            if !selected.contains(&site.pc) {
                continue;
            }
            let e = suite.energy.probabilistic_load_energy(site.probabilities());
            locality += site.value_locality() * site.count as f64;
            classic_nj += e * site.count as f64;
            weight += site.count;
        }
        if weight == 0 {
            continue;
        }
        let locality = locality / weight as f64;
        let classic_nj = classic_nj / weight as f64;
        let memo_nj = locality * lookup_nj + (1.0 - locality) * (classic_nj + lookup_nj);
        let recompute_nj = bench
            .prob_binary
            .slices
            .iter()
            .map(|m| m.est_recompute_nj)
            .sum::<f64>()
            / bench.prob_binary.slices.len().max(1) as f64;
        let winner = if recompute_nj < memo_nj {
            "recompute"
        } else {
            "memoize"
        };
        t.row(vec![
            bench.name.to_string(),
            format!("{:.1}", 100.0 * locality),
            format!("{classic_nj:.2}"),
            format!("{memo_nj:.2}"),
            format!("{recompute_nj:.2}"),
            winner.to_string(),
        ]);
    }
    format!(
        "§5.6 quantified: memoization (value table at L1-D cost, hit rate =          measured value locality) vs recomputation, per swapped load

{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BenchEval;
    use amnesiac_energy::EnergyModel;
    use amnesiac_workloads::{build_focal, Scale};

    #[test]
    fn srad_locality_lands_in_top_bins() {
        let suite = EvalSuite {
            benches: vec![BenchEval::compute(
                build_focal("sr", Scale::Test),
                &EnergyModel::paper(),
            )],
            energy: EnergyModel::paper(),
        };
        let text = render(&suite);
        assert!(text.contains("Fig. 8 (sr)"));
    }
}
