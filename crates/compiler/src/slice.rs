//! Slice specifications: a chosen cut of a producer tree, flattened into
//! the execution order of the eventual slice body.

use amnesiac_isa::{Instruction, OperandSource, Reg};

/// One instruction of a slice body, before embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceInstSpec {
    /// The replica instruction (verbatim copy of the producer).
    pub inst: Instruction,
    /// Main-code pc of the original producer.
    pub origin_pc: usize,
    /// Operand sourcing, aligned with [`Instruction::srcs`].
    pub sources: [Option<OperandSource>; 3],
}

impl SliceInstSpec {
    /// `true` if any operand must be checkpointed into `Hist` by a `REC`.
    pub fn needs_hist(&self) -> bool {
        self.sources
            .iter()
            .any(|s| matches!(s, Some(OperandSource::Hist { .. })))
    }

    /// `true` if no operand comes from the `SFile` — a leaf of the slice
    /// tree (paper Fig. 1).
    pub fn is_leaf(&self) -> bool {
        !self
            .sources
            .iter()
            .any(|s| matches!(s, Some(OperandSource::SFile { .. })))
    }
}

/// A fully specified recomputation slice for one load site.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceSpec {
    /// Main-code pc of the load this slice replaces.
    pub load_pc: usize,
    /// Slice instructions in dependency order (leaves first, root last).
    pub insts: Vec<SliceInstSpec>,
    /// Height of the chosen cut.
    pub height: u32,
    /// Estimated recomputation energy `E_rc` (nJ), including structure and
    /// amortised `REC` overheads.
    pub est_recompute_nj: f64,
    /// Estimated probabilistic load energy `E_ld` (nJ).
    pub est_load_nj: f64,
}

impl SliceSpec {
    /// The register holding the recomputed value after the root executes.
    pub fn root_reg(&self) -> Reg {
        self.insts
            .last()
            .and_then(|s| s.inst.dst())
            .expect("slices are non-empty and roots have destinations")
    }

    /// `true` if any instruction has non-recomputable (`Hist`) inputs.
    pub fn has_nonrecomputable(&self) -> bool {
        self.insts.iter().any(|s| s.needs_hist())
    }

    /// Distinct origin pcs that need a `REC` checkpoint inserted.
    pub fn rec_origins(&self) -> Vec<(usize, u16)> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.needs_hist())
            .map(|(i, s)| (s.origin_pc, i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesiac_isa::AluOp;

    fn spec(load_pc: usize) -> SliceSpec {
        SliceSpec {
            load_pc,
            insts: vec![
                SliceInstSpec {
                    inst: Instruction::Alui {
                        op: AluOp::Add,
                        dst: Reg(3),
                        src: Reg(2),
                        imm: 1,
                    },
                    origin_pc: 1,
                    sources: [Some(OperandSource::LiveReg), None, None],
                },
                SliceInstSpec {
                    inst: Instruction::Alui {
                        op: AluOp::Add,
                        dst: Reg(4),
                        src: Reg(5),
                        imm: 2,
                    },
                    origin_pc: 2,
                    sources: [Some(OperandSource::Hist { key: 0 }), None, None],
                },
                SliceInstSpec {
                    inst: Instruction::Alu {
                        op: AluOp::Add,
                        dst: Reg(5),
                        lhs: Reg(3),
                        rhs: Reg(4),
                    },
                    origin_pc: 10,
                    sources: [
                        Some(OperandSource::SFile { producer: 0 }),
                        Some(OperandSource::SFile { producer: 1 }),
                        None,
                    ],
                },
            ],
            height: 1,
            est_recompute_nj: 1.0,
            est_load_nj: 10.0,
        }
    }

    #[test]
    fn leaf_and_hist_classification() {
        let s = spec(7);
        assert!(s.insts[0].is_leaf());
        assert!(!s.insts[0].needs_hist());
        assert!(s.insts[1].is_leaf());
        assert!(s.insts[1].needs_hist());
        assert!(!s.insts[2].is_leaf());
        assert!(!s.insts[2].needs_hist());
    }

    #[test]
    fn spec_helpers() {
        let s = spec(7);
        assert_eq!(s.root_reg(), Reg(5));
        assert!(s.has_nonrecomputable());
        assert_eq!(s.rec_origins(), vec![(2, 1)]);
    }
}
