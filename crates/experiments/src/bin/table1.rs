//! Regenerates the paper's Table 1. Pass `--json <dir>` for the
//! machine-readable twin.
use amnesiac_experiments::export;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("{}", amnesiac_experiments::table1::render());
    if let Some(dir) = export::json_dir_from_args(&args) {
        export::write_json(&dir.join("table1.json"), &export::table1_json())
            .expect("results dir is writable");
        println!("machine-readable results written to {}", dir.display());
    }
}
