//! Adversarial mutation tests: corrupt a pipeline-produced annotated binary
//! in four structurally distinct ways and check that the static verifier
//! catches each with its own diagnostic kind. Mutation sites are chosen by
//! the deterministic [`amnesiac_rng::Rng`], so a seed bump widens coverage
//! without changing the harness.

use amnesiac_compiler::{compile, CompileOptions};
use amnesiac_isa::{Instruction, Program, Reg, SliceId};
use amnesiac_profile::profile_program;
use amnesiac_rng::Rng;
use amnesiac_sim::CoreConfig;
use amnesiac_verify::{verify, DiagnosticKind};
use amnesiac_workloads::{
    build_control, build_extended, build_focal, Scale, Workload, CONTROL_NAMES, EXTENDED_NAMES,
    FOCAL_NAMES,
};

/// Compiles a workload into a verifier-clean annotated binary.
fn annotated(workload: &Workload) -> Program {
    let config = CoreConfig::paper();
    let (profile, _) = profile_program(&workload.program, &config).expect("profiling succeeds");
    let (binary, _) =
        compile(&workload.program, &profile, &CompileOptions::default()).expect("compile succeeds");
    binary
}

/// Binaries across all three suites that actually carry slices (many
/// test-scale kernels swap nothing, which would make a mutation vacuous).
fn sliced_binaries() -> Vec<Program> {
    let workloads = FOCAL_NAMES
        .iter()
        .map(|n| build_focal(n, Scale::Test))
        .chain(CONTROL_NAMES.iter().map(|n| build_control(n, Scale::Test)))
        .chain(
            EXTENDED_NAMES
                .iter()
                .map(|n| build_extended(n, Scale::Test)),
        );
    workloads
        .map(|w| annotated(&w))
        .filter(|b| !b.slices.is_empty())
        .collect()
}

/// Main-code pcs of reachable `REC`s whose key some slice actually reads
/// from the `Hist` (deleting one of these must starve that slice).
fn needed_rec_pcs(binary: &Program) -> Vec<usize> {
    let needed: std::collections::BTreeSet<u16> =
        binary.slices.iter().flat_map(|m| m.hist_keys()).collect();
    binary.instructions[..binary.code_len]
        .iter()
        .enumerate()
        .filter_map(|(pc, inst)| match inst {
            Instruction::Rec { key, .. } if needed.contains(key) => Some(pc),
            _ => None,
        })
        .collect()
}

#[test]
fn deleting_a_rec_is_an_uncheckpointed_hist_error() {
    let mut rng = Rng::seed_from_u64(0xDE1E7E);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let recs = needed_rec_pcs(&binary);
        let Some(&pc) = recs.get(rng.below(recs.len().max(1) as u64) as usize) else {
            continue;
        };
        // A forward jump of one is a no-op in the CFG; only the checkpoint
        // disappears.
        binary.instructions[pc] = Instruction::Jump { target: pc + 1 };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::UncheckpointedHist),
            "{}: deleting the REC at pc {pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 2, "too few binaries had deletable RECs");
}

#[test]
fn retargeting_an_rcmp_is_a_bad_target_error() {
    let mut rng = Rng::seed_from_u64(0x47C0DE);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let rcmps: Vec<usize> = binary.instructions[..binary.code_len]
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| matches!(i, Instruction::Rcmp { .. }).then_some(pc))
            .collect();
        let pc = rcmps[rng.below(rcmps.len() as u64) as usize];
        let bogus = SliceId(binary.slices.len() as u32 + 1 + rng.below(100) as u32);
        if let Instruction::Rcmp { slice, .. } = &mut binary.instructions[pc] {
            *slice = bogus;
        }
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::RcmpBadTarget),
            "{}: retargeting the RCMP at pc {pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn injecting_a_store_into_a_slice_body_is_a_side_effect_error() {
    let mut rng = Rng::seed_from_u64(0x57073);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let meta = &binary.slices[rng.below(binary.slices.len() as u64) as usize];
        // Any body position except the terminating RTN.
        let pos = meta.entry + rng.below((meta.len - 1) as u64) as usize;
        binary.instructions[pos] = Instruction::Store {
            src: Reg(1),
            base: Reg(2),
            offset: 0,
        };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::SliceSideEffect),
            "{}: a Store at body pc {pos} went unnoticed: {report:?}",
            binary.name
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn dropping_a_rtn_is_a_missing_rtn_error() {
    let mut rng = Rng::seed_from_u64(0x0447);
    let mut exercised = 0;
    for mut binary in sliced_binaries() {
        let meta = &binary.slices[rng.below(binary.slices.len() as u64) as usize];
        let rtn_pc = meta.entry + meta.len - 1;
        // Replace the terminator with pure compute: the body stays clean,
        // only the missing RTN can trip the verifier.
        binary.instructions[rtn_pc] = Instruction::Alu {
            op: amnesiac_isa::AluOp::Add,
            dst: Reg(1),
            lhs: Reg(1),
            rhs: Reg(1),
        };
        let report = verify(&binary);
        assert!(
            report.has_kind(DiagnosticKind::SliceMissingRtn),
            "{}: dropping the RTN at pc {rtn_pc} went unnoticed: {report:?}",
            binary.name
        );
        assert!(
            !report.has_kind(DiagnosticKind::SliceSideEffect),
            "the compute replacement must not read as a side effect"
        );
        assert!(!report.is_clean());
        exercised += 1;
    }
    assert!(exercised >= 3);
}

#[test]
fn the_four_mutation_classes_map_to_four_distinct_kinds() {
    let kinds = [
        DiagnosticKind::UncheckpointedHist,
        DiagnosticKind::RcmpBadTarget,
        DiagnosticKind::SliceSideEffect,
        DiagnosticKind::SliceMissingRtn,
    ];
    let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
    assert_eq!(names.len(), kinds.len(), "kinds must be distinguishable");
    for k in kinds {
        assert_eq!(k.severity(), amnesiac_verify::Severity::Error);
    }
}
