//! Regenerates the paper's Table 6 (break-even R sweep).
use amnesiac_workloads::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Paper
    };
    println!("{}", amnesiac_experiments::table6::render(scale));
}
